// Unit tests for the util substrate: RNG, contracts, tables, timer.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <set>
#include <sstream>
#include <thread>

#include "util/check.hpp"
#include "util/parse.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace kstable {
namespace {

TEST(Check, RequireThrowsContractViolationWithContext) {
  try {
    KSTABLE_REQUIRE(1 == 2, "custom message " << 42);
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("precondition"), std::string::npos);
    EXPECT_NE(what.find("custom message 42"), std::string::npos);
    EXPECT_NE(what.find("util_test.cpp"), std::string::npos);
  }
}

TEST(Check, EnsureThrowsPostcondition) {
  EXPECT_THROW(KSTABLE_ENSURE(false, "bad"), ContractViolation);
}

TEST(Check, PassingConditionsDoNotThrow) {
  EXPECT_NO_THROW(KSTABLE_REQUIRE(true, "never"));
  EXPECT_NO_THROW(KSTABLE_ENSURE(2 + 2 == 4, "never"));
}

TEST(Rng, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b());
  EXPECT_LT(same, 3);
}

TEST(Rng, BelowRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
}

TEST(Rng, BelowOneAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.below(1), 0U);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(42);
  constexpr int kBuckets = 8;
  constexpr int kDraws = 80000;
  std::array<int, kBuckets> histogram{};
  for (int i = 0; i < kDraws; ++i) ++histogram[rng.below(kBuckets)];
  for (const int count : histogram) {
    EXPECT_NEAR(count, kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(Rng, RangeInclusive) {
  Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7U);  // all 7 values hit in 500 draws
}

TEST(Rng, Uniform01InUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, PermutationIsValid) {
  Rng rng(99);
  for (std::int32_t n : {1, 2, 5, 100}) {
    auto perm = rng.permutation(n);
    ASSERT_EQ(perm.size(), static_cast<std::size_t>(n));
    auto sorted = perm;
    std::sort(sorted.begin(), sorted.end());
    for (std::int32_t i = 0; i < n; ++i) EXPECT_EQ(sorted[i], i);
  }
}

TEST(Rng, PermutationsVary) {
  Rng rng(100);
  // Over 20 permutations of 10 elements, at least two should differ.
  const auto first = rng.permutation(10);
  bool any_different = false;
  for (int i = 0; i < 20 && !any_different; ++i) {
    any_different = rng.permutation(10) != first;
  }
  EXPECT_TRUE(any_different);
}

TEST(Rng, ShuffleKeepsMultiset) {
  Rng rng(3);
  std::vector<int> v{1, 1, 2, 3, 5, 8, 13};
  auto original = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  std::sort(original.begin(), original.end());
  EXPECT_EQ(v, original);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(17);
  Rng child = parent.fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (parent() == child());
  EXPECT_LT(same, 3);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Splitmix, KnownFirstOutputs) {
  std::uint64_t state = 0;
  const std::uint64_t first = splitmix64(state);
  const std::uint64_t second = splitmix64(state);
  EXPECT_NE(first, second);
  // Reference value for seed 0 (published splitmix64 test vector).
  EXPECT_EQ(first, 0xe220a8397b1dcdafULL);
}

TEST(Table, AlignedPrintContainsAllCells) {
  TableWriter table("demo", {"name", "count", "ratio"});
  table.add_row({std::string("alpha"), std::int64_t{42}, 0.5});
  table.add_row({std::string("b"), std::int64_t{7}, 1.25});
  std::ostringstream os;
  table.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("demo"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("42"), std::string::npos);
  EXPECT_NE(out.find("1.250"), std::string::npos);
  EXPECT_EQ(table.row_count(), 2U);
}

TEST(Table, CsvEscapesSpecialCharacters) {
  TableWriter table("csv", {"a", "b"});
  table.add_row({std::string("has,comma"), std::string("has\"quote")});
  std::ostringstream os;
  table.print_csv(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(out.find("\"has\"\"quote\""), std::string::npos);
}

TEST(Table, RowAritymismatchRejected) {
  TableWriter table("bad", {"only"});
  EXPECT_THROW(table.add_row({std::string("x"), std::string("y")}),
               ContractViolation);
}

TEST(Table, EmptyColumnsRejected) {
  EXPECT_THROW(TableWriter("t", {}), ContractViolation);
}

TEST(Table, FormatDoubleDigits) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(2.0, 0), "2");
}

TEST(Table, JoinBehaviour) {
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"a"}, ","), "a");
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(Timer, MeasuresElapsedTime) {
  WallTimer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double ms = timer.millis();
  EXPECT_GE(ms, 15.0);
  EXPECT_LT(ms, 5000.0);
  timer.reset();
  EXPECT_LT(timer.millis(), 15.0);
}

TEST(Timer, UnitsAreConsistent) {
  WallTimer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const double s = timer.seconds();
  const double ms = timer.millis();
  EXPECT_NEAR(ms / 1000.0, s, 0.05);
}

// --- parse_number ----------------------------------------------------------

TEST(ParseNumber, AcceptsPlainIntegersInRange) {
  EXPECT_EQ(util::parse_number<int>("42", 0, 100), 42);
  EXPECT_EQ(util::parse_number<int>("-3", -10, 10), -3);
  EXPECT_EQ(util::parse_number<std::int64_t>("0", -1, 1), 0);
}

TEST(ParseNumber, AcceptsPlainDoubles) {
  EXPECT_EQ(util::parse_number<double>("2.5", 0.0, 10.0), 2.5);
  EXPECT_EQ(util::parse_number<double>("1e3", 0.0, 1e9), 1000.0);
  EXPECT_EQ(util::parse_number<double>("-0.25", -1.0, 1.0), -0.25);
  EXPECT_EQ(util::parse_number<double>(".5", 0.0, 1.0), 0.5);
  EXPECT_EQ(util::parse_number<double>("1E+2", 0.0, 1e9), 100.0);
}

TEST(ParseNumber, RejectionTableBothPaths) {
  // Every row must be rejected with from_chars semantics by BOTH the
  // integral and the floating-point path (the strtod path used to accept
  // several of these).
  const char* rejected[] = {
      "",       // empty
      "nan",    // NaN compares false against both range bounds
      "NAN",    //
      "-nan",   // sign-prefixed NaN (first char passes; alphabet scan rejects)
      "inf",    // infinity words
      "-inf",   //
      "infinity",
      " 5",     // leading whitespace (strtod skips it; from_chars does not)
      "\t5",    //
      "+5",     // leading '+' (from_chars rejects)
      "0x1p3",  // hex float (strtod parses it as 8.0)
      "0X10",   //
      "5x",     // trailing junk
      "1e",     // dangling exponent
      "--1",    //
      "abc",    //
  };
  for (const char* text : rejected) {
    EXPECT_FALSE(util::parse_number<double>(text, -1e18, 1e18).has_value())
        << "double path accepted '" << text << "'";
    EXPECT_FALSE(util::parse_number<std::int64_t>(text).has_value())
        << "integer path accepted '" << text << "'";
  }
}

TEST(ParseNumber, RejectsOverflowAndUnderflow) {
  // "1e999" overflows to +inf with ERANGE; "1e-999" silently underflows to
  // ~0.0 with ERANGE — both used to pass the [lo, hi] filter.
  EXPECT_FALSE(util::parse_number<double>("1e999", 0.0, 1e308).has_value());
  EXPECT_FALSE(util::parse_number<double>("-1e999", -1e308, 0.0).has_value());
  EXPECT_FALSE(util::parse_number<double>("1e-999", 0.0, 1e9).has_value());
  EXPECT_FALSE(
      util::parse_number<std::int32_t>("99999999999999999999").has_value());
}

TEST(ParseNumber, RangeBoundsAreInclusive) {
  EXPECT_EQ(util::parse_number<int>("10", 0, 10), 10);
  EXPECT_EQ(util::parse_number<int>("0", 0, 10), 0);
  EXPECT_FALSE(util::parse_number<int>("11", 0, 10).has_value());
  EXPECT_FALSE(util::parse_number<int>("-1", 0, 10).has_value());
  EXPECT_EQ(util::parse_number<double>("1.5", 1.5, 2.0), 1.5);
  EXPECT_FALSE(util::parse_number<double>("1.49", 1.5, 2.0).has_value());
}

TEST(ParseNumber, IntegralPathStillRejectsFloatSyntax) {
  EXPECT_FALSE(util::parse_number<int>("2.5", 0, 10).has_value());
  EXPECT_FALSE(util::parse_number<int>("1e3", 0, 10000).has_value());
}

}  // namespace
}  // namespace kstable
