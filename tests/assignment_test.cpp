// Tests for the Hungarian min-cost assignment baseline.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "analysis/assignment.hpp"
#include "analysis/metrics.hpp"
#include "gs/gale_shapley.hpp"
#include "prefs/generators.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace kstable::analysis {
namespace {

std::int64_t assignment_cost(const std::vector<std::int64_t>& cost, Index n,
                             const std::vector<Index>& row_to_col) {
  std::int64_t total = 0;
  for (Index i = 0; i < n; ++i) {
    total += cost[static_cast<std::size_t>(i) * static_cast<std::size_t>(n) +
                  static_cast<std::size_t>(row_to_col[static_cast<std::size_t>(i)])];
  }
  return total;
}

TEST(Hungarian, TrivialCases) {
  EXPECT_EQ(min_cost_assignment({5}, 1), std::vector<Index>{0});
  // 2x2: diagonal cheaper.
  const auto a = min_cost_assignment({1, 10, 10, 1}, 2);
  EXPECT_EQ(a, (std::vector<Index>{0, 1}));
  // 2x2: anti-diagonal cheaper.
  const auto b = min_cost_assignment({10, 1, 1, 10}, 2);
  EXPECT_EQ(b, (std::vector<Index>{1, 0}));
}

TEST(Hungarian, InputValidation) {
  EXPECT_THROW(min_cost_assignment({1, 2, 3}, 2), ContractViolation);
  EXPECT_THROW(min_cost_assignment({}, 0), ContractViolation);
}

TEST(Hungarian, MatchesBruteForceOnRandomMatrices) {
  Rng rng(2300);
  for (int trial = 0; trial < 40; ++trial) {
    const Index n = static_cast<Index>(2 + rng.below(5));  // 2..6
    std::vector<std::int64_t> cost(static_cast<std::size_t>(n) *
                                   static_cast<std::size_t>(n));
    for (auto& c : cost) c = static_cast<std::int64_t>(rng.below(100));
    const auto hungarian = min_cost_assignment(cost, n);
    // Assignment is a permutation.
    auto sorted = hungarian;
    std::sort(sorted.begin(), sorted.end());
    for (Index i = 0; i < n; ++i) ASSERT_EQ(sorted[static_cast<std::size_t>(i)], i);
    // Brute force optimum.
    std::vector<Index> perm(static_cast<std::size_t>(n));
    std::iota(perm.begin(), perm.end(), Index{0});
    std::int64_t best = std::numeric_limits<std::int64_t>::max();
    do {
      best = std::min(best, assignment_cost(cost, n, perm));
    } while (std::next_permutation(perm.begin(), perm.end()));
    EXPECT_EQ(assignment_cost(cost, n, hungarian), best)
        << "n=" << n << " trial=" << trial;
  }
}

TEST(Assignment, EgalitarianOptimalBeatsGsOnCost) {
  Rng rng(2301);
  for (int trial = 0; trial < 15; ++trial) {
    const Index n = 16;
    const auto inst = gen::uniform(2, n, rng);
    const auto optimal = egalitarian_assignment(inst, 0, 1);
    const auto gs_result = gs::gale_shapley_queue(inst, 0, 1);
    const auto opt_costs = bipartite_costs(inst, 0, 1, optimal);
    const auto gs_costs = bipartite_costs(inst, 0, 1, gs_result.proposer_match);
    EXPECT_LE(opt_costs.egalitarian(), gs_costs.egalitarian());
    // GS never has blocking pairs; the optimum is allowed to.
    EXPECT_EQ(count_blocking_pairs(inst, 0, 1, gs_result.proposer_match), 0);
    EXPECT_GE(count_blocking_pairs(inst, 0, 1, optimal), 0);
  }
}

TEST(Assignment, OptimalAssignmentIsUsuallyUnstable) {
  Rng rng(2302);
  int unstable = 0;
  const int trials = 20;
  for (int trial = 0; trial < trials; ++trial) {
    const auto inst = gen::uniform(2, 24, rng);
    const auto optimal = egalitarian_assignment(inst, 0, 1);
    unstable += count_blocking_pairs(inst, 0, 1, optimal) > 0;
  }
  EXPECT_GT(unstable, trials / 2);
}

TEST(Assignment, CostMatrixIsSymmetricInDefinition) {
  Rng rng(2303);
  const auto inst = gen::uniform(2, 5, rng);
  const auto cost_ab = egalitarian_cost_matrix(inst, 0, 1);
  const auto cost_ba = egalitarian_cost_matrix(inst, 1, 0);
  for (Index i = 0; i < 5; ++i) {
    for (Index j = 0; j < 5; ++j) {
      EXPECT_EQ(cost_ab[static_cast<std::size_t>(i) * 5 +
                        static_cast<std::size_t>(j)],
                cost_ba[static_cast<std::size_t>(j) * 5 +
                        static_cast<std::size_t>(i)]);
    }
  }
}

}  // namespace
}  // namespace kstable::analysis
