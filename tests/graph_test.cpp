// Unit tests for the graph substrate: binding structures, Prüfer codes,
// round scheduling, bitonic trees.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "graph/binding_structure.hpp"
#include "graph/prufer.hpp"
#include "graph/scheduling.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace kstable {
namespace {

TEST(BindingStructure, BasicEdgeBookkeeping) {
  BindingStructure s(4);
  s.add_edge({0, 1});
  s.add_edge({1, 2});
  EXPECT_EQ(s.edges().size(), 2U);
  EXPECT_EQ(s.degree(1), 2);
  EXPECT_EQ(s.degree(3), 0);
  EXPECT_EQ(s.max_degree(), 2);
  EXPECT_EQ(s.component_count(), 2);
  EXPECT_FALSE(s.is_spanning_tree());
  s.add_edge({2, 3});
  EXPECT_TRUE(s.is_spanning_tree());
}

TEST(BindingStructure, RejectsBadEdges) {
  BindingStructure s(3);
  EXPECT_THROW(s.add_edge({0, 0}), ContractViolation);   // self loop
  EXPECT_THROW(s.add_edge({0, 3}), ContractViolation);   // out of range
  s.add_edge({0, 1});
  EXPECT_THROW(s.add_edge({1, 0}), ContractViolation);   // duplicate (normalized)
}

TEST(BindingStructure, CycleDetection) {
  BindingStructure s(4);
  s.add_edge({0, 1});
  s.add_edge({1, 2});
  EXPECT_TRUE(s.would_cycle(0, 2));
  EXPECT_FALSE(s.would_cycle(0, 3));
  EXPECT_FALSE(s.has_cycle());
  s.add_edge({0, 2});
  EXPECT_TRUE(s.has_cycle());
  EXPECT_FALSE(s.is_forest());
  EXPECT_FALSE(s.is_spanning_tree());
}

TEST(BindingStructure, NeighborsAndComponents) {
  BindingStructure s(5);
  s.add_edge({0, 2});
  s.add_edge({2, 4});
  const auto nbrs = s.neighbors(2);
  EXPECT_EQ(std::set<Gender>(nbrs.begin(), nbrs.end()), (std::set<Gender>{0, 4}));
  const auto labels = s.component_labels();
  EXPECT_EQ(labels[0], labels[2]);
  EXPECT_EQ(labels[2], labels[4]);
  EXPECT_NE(labels[0], labels[1]);
  EXPECT_EQ(s.component_count(), 3);
}

TEST(TreeFactories, PathStarCaterpillar) {
  const auto path = trees::path(5);
  EXPECT_TRUE(path.is_spanning_tree());
  EXPECT_EQ(path.max_degree(), 2);

  const auto star = trees::star(5, 2);
  EXPECT_TRUE(star.is_spanning_tree());
  EXPECT_EQ(star.max_degree(), 4);
  EXPECT_EQ(star.degree(2), 4);

  const auto cat = trees::caterpillar(7, 3);
  EXPECT_TRUE(cat.is_spanning_tree());
  EXPECT_THROW(trees::caterpillar(4, 0), ContractViolation);
  EXPECT_THROW(trees::star(3, 5), ContractViolation);
}

TEST(Prufer, EncodeDecodeRoundTripAllSmallTrees) {
  for (Gender k = 2; k <= 7; ++k) {
    std::int64_t count = 0;
    prufer::enumerate_trees(k, [&](const BindingStructure& tree) {
      ASSERT_TRUE(tree.is_spanning_tree());
      const auto seq = prufer::encode(tree);
      const auto back = prufer::decode(seq, k);
      // Same edge set (normalized).
      std::set<std::pair<Gender, Gender>> a, b;
      for (const auto& e : tree.edges()) {
        a.insert({e.normalized().a, e.normalized().b});
      }
      for (const auto& e : back.edges()) {
        b.insert({e.normalized().a, e.normalized().b});
      }
      ASSERT_EQ(a, b);
      ++count;
    });
    EXPECT_EQ(count, prufer::cayley_count(k)) << "k=" << k;
  }
}

TEST(Prufer, CayleyValues) {
  EXPECT_EQ(prufer::cayley_count(2), 1);
  EXPECT_EQ(prufer::cayley_count(3), 3);
  EXPECT_EQ(prufer::cayley_count(4), 16);
  EXPECT_EQ(prufer::cayley_count(5), 125);
  EXPECT_EQ(prufer::cayley_count(8), 262144);
}

TEST(Prufer, DecodeValidation) {
  EXPECT_THROW(prufer::decode({0, 1}, 3), ContractViolation);  // wrong length
  EXPECT_THROW(prufer::decode({5}, 3), ContractViolation);     // entry range
  EXPECT_THROW(prufer::decode({}, 1), ContractViolation);      // k too small
}

TEST(Prufer, RandomTreesAreValidAndVaried) {
  Rng rng(8);
  std::set<std::vector<Gender>> seen;
  for (int i = 0; i < 50; ++i) {
    const auto tree = prufer::random_tree(6, rng);
    ASSERT_TRUE(tree.is_spanning_tree());
    seen.insert(prufer::encode(tree));
  }
  EXPECT_GT(seen.size(), 10U);  // 1296 possible; 50 draws should vary widely
}

TEST(Prufer, EncodeRejectsNonTrees) {
  BindingStructure forest(4);
  forest.add_edge({0, 1});
  EXPECT_THROW(prufer::encode(forest), ContractViolation);
}

TEST(Scheduling, TreeColoringUsesExactlyMaxDegreeRounds) {
  Rng rng(9);
  for (Gender k = 2; k <= 10; ++k) {
    for (int trial = 0; trial < 20; ++trial) {
      const auto tree = prufer::random_tree(k, rng);
      const auto schedule = sched::color_forest(tree);
      EXPECT_EQ(static_cast<std::int32_t>(schedule.round_count()),
                tree.max_degree());
      EXPECT_NO_THROW(sched::validate_schedule(tree, schedule));
    }
  }
}

TEST(Scheduling, PathColoringIsTwoRounds) {
  const auto path = trees::path(8);
  const auto schedule = sched::color_forest(path);
  EXPECT_EQ(schedule.round_count(), 2U);  // Corollary 2
}

TEST(Scheduling, StarColoringIsKMinus1Rounds) {
  const auto star = trees::star(6, 0);
  const auto schedule = sched::color_forest(star);
  EXPECT_EQ(schedule.round_count(), 5U);  // Corollary 1 worst case
}

TEST(Scheduling, ForestColoringWorks) {
  BindingStructure forest(6);
  forest.add_edge({0, 1});
  forest.add_edge({2, 3});
  forest.add_edge({3, 4});
  const auto schedule = sched::color_forest(forest);
  EXPECT_EQ(schedule.round_count(), 2U);
  EXPECT_NO_THROW(sched::validate_schedule(forest, schedule));
}

TEST(Scheduling, EvenOddMatchesFig4) {
  const auto schedule = sched::even_odd_path_schedule(6);
  ASSERT_EQ(schedule.round_count(), 2U);
  // Round 0: edges (0,1), (2,3), (4,5) = indices 0, 2, 4.
  EXPECT_EQ(schedule.rounds[0], (std::vector<std::size_t>{0, 2, 4}));
  EXPECT_EQ(schedule.rounds[1], (std::vector<std::size_t>{1, 3}));
  EXPECT_NO_THROW(sched::validate_schedule(trees::path(6), schedule));
}

TEST(Scheduling, ValidateRejectsConflictingRounds) {
  const auto path = trees::path(3);  // edges (0,1), (1,2) share gender 1
  sched::RoundSchedule bad;
  bad.rounds = {{0, 1}};
  EXPECT_THROW(sched::validate_schedule(path, bad), ContractViolation);
  sched::RoundSchedule missing;
  missing.rounds = {{0}};
  EXPECT_THROW(sched::validate_schedule(path, missing), ContractViolation);
  sched::RoundSchedule duplicated;
  duplicated.rounds = {{0}, {0}, {1}};
  EXPECT_THROW(sched::validate_schedule(path, duplicated), ContractViolation);
}

TEST(Bitonic, PathIsBitonicUnderIdentity) {
  // Path 0-1-2-3: every path is monotone, hence bitonic.
  EXPECT_TRUE(sched::is_bitonic_tree(trees::path(4)));
}

TEST(Bitonic, StarAtHighestIsBitonic) {
  // Star centered at the highest-priority gender: every path rises to the
  // center then falls.
  EXPECT_TRUE(sched::is_bitonic_tree(trees::star(5, 4)));
}

TEST(Bitonic, StarAtLowestIsNotBitonic) {
  // Star centered at gender 0 (lowest priority): the path 1-0-2 dips.
  EXPECT_FALSE(sched::is_bitonic_tree(trees::star(5, 0)));
}

TEST(Bitonic, PaperSequencesExample) {
  // §IV.D: (1,3,4,2) and (1,2,3,4) and (4,3,2,1) bitonic; (4,1,2,3) not.
  // Encode each as a path tree with the given priority sequence.
  auto path_with_priorities = [](const std::vector<std::int32_t>& prio_seq) {
    const auto k = static_cast<Gender>(prio_seq.size());
    std::vector<std::int32_t> priority(static_cast<std::size_t>(k));
    for (Gender g = 0; g < k; ++g) {
      priority[static_cast<std::size_t>(g)] = prio_seq[static_cast<std::size_t>(g)];
    }
    return sched::is_bitonic_tree(trees::path(k), priority);
  };
  EXPECT_TRUE(path_with_priorities({1, 3, 4, 2}));
  EXPECT_TRUE(path_with_priorities({4, 3, 2, 1}));
  EXPECT_TRUE(path_with_priorities({1, 2, 3, 4}));
  EXPECT_FALSE(path_with_priorities({4, 1, 2, 3}));
}

TEST(Bitonic, Fig5Trees) {
  // Fig. 5 (k = 4, priorities = gender id 1..4 → 0-indexed 0..3).
  // (a) unstable: a tree where the two highest-priority genders (2,3) hang
  //     off low-priority nodes — e.g. path 3-0-1-2 is not bitonic (3,0,1,2).
  BindingStructure bad(4);
  bad.add_edge({3, 0});
  bad.add_edge({0, 1});
  bad.add_edge({1, 2});
  EXPECT_FALSE(sched::is_bitonic_tree(bad));
  // (b) stable: 4 at the top, e.g. star at 3 or path 0-1-2-3.
  BindingStructure good(4);
  good.add_edge({3, 2});
  good.add_edge({3, 1});
  good.add_edge({2, 0});
  EXPECT_TRUE(sched::is_bitonic_tree(good));
}

TEST(Bitonic, RequiresMatchingPrioritySize) {
  EXPECT_THROW(sched::is_bitonic_tree(trees::path(4), {1, 2}),
               ContractViolation);
}

}  // namespace
}  // namespace kstable
