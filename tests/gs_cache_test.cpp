// Tests for core::GsEdgeCache: the cache must be semantically invisible —
// cached and uncached solves produce identical KaryMatchings, proposal
// counts, and stability verdicts across every spanning binding tree (GS
// confluence makes each per-edge result a pure function of the instance,
// the oriented edge, and the engine) — while collapsing multi-tree work to
// at most k(k-1) fresh GS runs per instance.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "analysis/oracle.hpp"
#include "core/binding.hpp"
#include "core/gs_cache.hpp"
#include "core/tree_selection.hpp"
#include "graph/prufer.hpp"
#include "prefs/generators.hpp"
#include "resilience/fault_injection.hpp"
#include "resilience/solve_ladder.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace kstable::core {
namespace {

/// Property sweep: for every Prüfer tree of k genders, a shared cache must
/// not change anything observable about iterative_binding.
class CacheTransparencyTest
    : public ::testing::TestWithParam<std::tuple<Gender, GsEngine>> {};

TEST_P(CacheTransparencyTest, IdenticalAcrossAllPruferTrees) {
  const auto [k, engine] = GetParam();
  const Index n = 5;
  Rng rng(static_cast<std::uint64_t>(k) * 1201 + 17);
  const auto inst = gen::uniform(k, n, rng);

  GsEdgeCache cache(k);
  BindingOptions cached_options;
  cached_options.engine = engine;
  cached_options.cache = &cache;
  BindingOptions uncached_options;
  uncached_options.engine = engine;

  std::int64_t trees = 0;
  std::int64_t accumulated_executed_cached = 0;
  std::int64_t accumulated_executed_uncached = 0;
  prufer::enumerate_trees(k, [&](const BindingStructure& tree) {
    ++trees;
    const auto cached = iterative_binding(inst, tree, cached_options);
    const auto uncached = iterative_binding(inst, tree, uncached_options);
    ASSERT_TRUE(cached.has_matching());
    ASSERT_TRUE(uncached.has_matching());
    // Bitwise-identical matchings, identical proposal accounting.
    EXPECT_EQ(cached.matching(), uncached.matching());
    EXPECT_EQ(cached.total_proposals, uncached.total_proposals);
    // Identical stability verdicts (both must be stable, Theorem 2).
    EXPECT_EQ(
        analysis::find_blocking_family(inst, cached.matching()).has_value(),
        analysis::find_blocking_family(inst, uncached.matching()).has_value());
    accumulated_executed_cached += cached.executed_proposals;
    accumulated_executed_uncached += uncached.executed_proposals;
    EXPECT_EQ(cached.cache_hits + cached.cache_misses, k - 1);
    EXPECT_EQ(uncached.cache_hits, 0);
    EXPECT_EQ(uncached.cache_misses, 0);
  });
  EXPECT_EQ(trees, prufer::cayley_count(k));
  // The cache holds at most k(k-1) oriented edges for this engine, no matter
  // how many trees were swept.
  EXPECT_LE(cache.size(),
            static_cast<std::size_t>(k) * static_cast<std::size_t>(k - 1));
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses,
            trees * static_cast<std::int64_t>(k - 1));
  EXPECT_EQ(stats.misses, static_cast<std::int64_t>(cache.size()));
  // Multi-tree executed work collapses (k >= 4 sweeps enough trees to
  // guarantee real reuse; k = 3 has 3 trees over 6 oriented edges).
  if (k >= 4) {
    EXPECT_LT(accumulated_executed_cached, accumulated_executed_uncached);
  }
  EXPECT_LE(accumulated_executed_cached, accumulated_executed_uncached);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CacheTransparencyTest,
    ::testing::Combine(::testing::Values(Gender{3}, Gender{4}, Gender{5}),
                       ::testing::Values(GsEngine::queue, GsEngine::rounds)));

TEST(GsEdgeCache, KeyedByOrientationAndEngine) {
  Rng rng(42);
  const auto inst = gen::uniform(3, 8, rng);
  GsEdgeCache cache(3);
  BindingOptions options;
  options.cache = &cache;

  bool hit = false;
  const auto forward = run_binding(inst, {0, 1}, options, &hit);
  EXPECT_FALSE(hit);
  // Same unordered pair, opposite orientation: a different proposer-optimal
  // matching, so it must be a distinct entry.
  const auto backward = run_binding(inst, {1, 0}, options, &hit);
  EXPECT_FALSE(hit);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(forward.proposer_gender, 0);
  EXPECT_EQ(backward.proposer_gender, 1);

  // Same edge again: replayed, not recomputed.
  const auto replay = run_binding(inst, {0, 1}, options, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(replay.proposer_match, forward.proposer_match);

  // Same edge, different engine: distinct key (same matching by confluence).
  options.engine = GsEngine::rounds;
  const auto rounds = run_binding(inst, {0, 1}, options, &hit);
  EXPECT_FALSE(hit);
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(rounds.proposer_match, forward.proposer_match);
}

TEST(GsEdgeCache, GenderCountMismatchThrows) {
  Rng rng(43);
  const auto inst = gen::uniform(4, 4, rng);
  GsEdgeCache cache(3);  // built for a different instance shape
  BindingOptions options;
  options.cache = &cache;
  EXPECT_THROW(run_binding(inst, {0, 1}, options), ContractViolation);
}

TEST(GsEdgeCache, ProbePhasePrepaysTheSelectedTree) {
  const Gender k = 5;
  Rng rng(44);
  const auto inst = gen::uniform(k, 16, rng);
  GsEdgeCache cache(k);
  BindingOptions options;
  options.cache = &cache;

  // Cost-aware selection probes all k(k-1)/2 pairs, warming the cache...
  const auto tree = select_tree(inst, TreeObjective::min_cost, options);
  EXPECT_EQ(cache.size(), static_cast<std::size_t>(k) * (k - 1) / 2);
  // ...so binding along the selected tree replays every edge for free.
  const auto result = iterative_binding(inst, tree, options);
  EXPECT_EQ(result.cache_hits, k - 1);
  EXPECT_EQ(result.cache_misses, 0);
  EXPECT_EQ(result.executed_proposals, 0);
  EXPECT_GT(result.total_proposals, 0);
  // And it matches the uncached convenience wrapper bit for bit.
  const auto uncached = cost_aware_binding(inst, TreeObjective::min_cost);
  EXPECT_EQ(result.matching(), uncached.matching());
}

TEST(GsEdgeCache, LadderRetriesWithInjectedFaultsAreCacheInvariant) {
  const Gender k = 5;
  Rng rng(45);
  const auto inst = gen::uniform(k, 8, rng);

  // Fire on the 2nd and 4th binding-edge hits: attempt 1 completes one edge
  // and dies, attempt 2 completes one edge and dies, attempt 3 runs through.
  resilience::FaultConfig config;
  config.fire_after = 1;
  config.probability = 1.0;
  config.max_fires = 2;

  resilience::FallbackOptions ladder;
  ladder.max_tree_attempts = 4;

  resilience::FallbackReport uncached;
  {
    resilience::ScopedFault fault("core/binding_edge", config);
    uncached = resilience::solve_with_fallback(inst, ladder);
  }

  GsEdgeCache cache(k);
  ladder.cache = &cache;
  resilience::FallbackReport cached;
  {
    resilience::ScopedFault fault("core/binding_edge", config);
    cached = resilience::solve_with_fallback(inst, ladder);
  }

  // Identical observable outcome: same rung, same retry path, same matching.
  ASSERT_TRUE(uncached.succeeded);
  ASSERT_TRUE(cached.succeeded);
  EXPECT_EQ(cached.rung, uncached.rung);
  EXPECT_EQ(cached.attempts.size(), uncached.attempts.size());
  EXPECT_EQ(cached.matching(), uncached.matching());
  EXPECT_EQ(cached.result->total_proposals, uncached.result->total_proposals);
  EXPECT_EQ(uncached.cache_hits, 0);
  EXPECT_GT(cached.cache_misses, 0);

  // Re-running the ladder against the warm cache (the serving shape: the
  // same request retried) replays every completed edge — identical outcome,
  // strictly less executed work, and fault hits counted identically so the
  // retry path is unchanged.
  resilience::FallbackReport warm;
  {
    resilience::ScopedFault fault("core/binding_edge", config);
    warm = resilience::solve_with_fallback(inst, ladder);
  }
  ASSERT_TRUE(warm.succeeded);
  EXPECT_EQ(warm.rung, uncached.rung);
  EXPECT_EQ(warm.attempts.size(), uncached.attempts.size());
  EXPECT_EQ(warm.matching(), uncached.matching());
  EXPECT_GT(warm.cache_hits, 0);
  EXPECT_LT(warm.executed_proposals, uncached.executed_proposals);
}

TEST(GsEdgeCache, ClearResetsEntriesAndCounters) {
  Rng rng(46);
  const auto inst = gen::uniform(3, 6, rng);
  GsEdgeCache cache(3);
  BindingOptions options;
  options.cache = &cache;
  run_binding(inst, {0, 1}, options);
  run_binding(inst, {0, 1}, options);
  EXPECT_EQ(cache.stats().hits, 1);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().hits, 0);
  EXPECT_EQ(cache.stats().misses, 0);
  bool hit = true;
  run_binding(inst, {0, 1}, options, &hit);
  EXPECT_FALSE(hit);
}

}  // namespace
}  // namespace kstable::core
