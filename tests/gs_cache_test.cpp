// Tests for core::GsEdgeCache: the cache must be semantically invisible —
// cached and uncached solves produce identical KaryMatchings, proposal
// counts, and stability verdicts across every spanning binding tree (GS
// confluence makes each per-edge result a pure function of the instance,
// the oriented edge, and the engine) — while collapsing multi-tree work to
// at most k(k-1) fresh GS runs per instance.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <tuple>
#include <vector>

#include "analysis/oracle.hpp"
#include "core/binding.hpp"
#include "core/gs_cache.hpp"
#include "core/tree_selection.hpp"
#include "graph/binding_structure.hpp"
#include "graph/prufer.hpp"
#include "prefs/generators.hpp"
#include "resilience/fault_injection.hpp"
#include "resilience/solve_ladder.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace kstable::core {
namespace {

/// Property sweep: for every Prüfer tree of k genders, a shared cache must
/// not change anything observable about iterative_binding.
class CacheTransparencyTest
    : public ::testing::TestWithParam<std::tuple<Gender, GsEngine>> {};

TEST_P(CacheTransparencyTest, IdenticalAcrossAllPruferTrees) {
  const auto [k, engine] = GetParam();
  const Index n = 5;
  Rng rng(static_cast<std::uint64_t>(k) * 1201 + 17);
  const auto inst = gen::uniform(k, n, rng);

  GsEdgeCache cache(k);
  BindingOptions cached_options;
  cached_options.engine = engine;
  cached_options.cache = &cache;
  BindingOptions uncached_options;
  uncached_options.engine = engine;

  std::int64_t trees = 0;
  std::int64_t accumulated_executed_cached = 0;
  std::int64_t accumulated_executed_uncached = 0;
  prufer::enumerate_trees(k, [&](const BindingStructure& tree) {
    ++trees;
    const auto cached = iterative_binding(inst, tree, cached_options);
    const auto uncached = iterative_binding(inst, tree, uncached_options);
    ASSERT_TRUE(cached.has_matching());
    ASSERT_TRUE(uncached.has_matching());
    // Bitwise-identical matchings, identical proposal accounting.
    EXPECT_EQ(cached.matching(), uncached.matching());
    EXPECT_EQ(cached.total_proposals, uncached.total_proposals);
    // Identical stability verdicts (both must be stable, Theorem 2).
    EXPECT_EQ(
        analysis::find_blocking_family(inst, cached.matching()).has_value(),
        analysis::find_blocking_family(inst, uncached.matching()).has_value());
    accumulated_executed_cached += cached.executed_proposals;
    accumulated_executed_uncached += uncached.executed_proposals;
    EXPECT_EQ(cached.cache_hits + cached.cache_misses, k - 1);
    EXPECT_EQ(uncached.cache_hits, 0);
    EXPECT_EQ(uncached.cache_misses, 0);
  });
  EXPECT_EQ(trees, prufer::cayley_count(k));
  // The cache holds at most k(k-1) oriented edges for this engine, no matter
  // how many trees were swept.
  EXPECT_LE(cache.size(),
            static_cast<std::size_t>(k) * static_cast<std::size_t>(k - 1));
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses,
            trees * static_cast<std::int64_t>(k - 1));
  EXPECT_EQ(stats.misses, static_cast<std::int64_t>(cache.size()));
  // Multi-tree executed work collapses (k >= 4 sweeps enough trees to
  // guarantee real reuse; k = 3 has 3 trees over 6 oriented edges).
  if (k >= 4) {
    EXPECT_LT(accumulated_executed_cached, accumulated_executed_uncached);
  }
  EXPECT_LE(accumulated_executed_cached, accumulated_executed_uncached);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CacheTransparencyTest,
    ::testing::Combine(::testing::Values(Gender{3}, Gender{4}, Gender{5}),
                       ::testing::Values(GsEngine::queue, GsEngine::rounds)));

TEST(GsEdgeCache, KeyedByOrientationAndEngine) {
  Rng rng(42);
  const auto inst = gen::uniform(3, 8, rng);
  GsEdgeCache cache(3);
  BindingOptions options;
  options.cache = &cache;

  bool hit = false;
  const auto forward = run_binding(inst, {0, 1}, options, &hit);
  EXPECT_FALSE(hit);
  // Same unordered pair, opposite orientation: a different proposer-optimal
  // matching, so it must be a distinct entry.
  const auto backward = run_binding(inst, {1, 0}, options, &hit);
  EXPECT_FALSE(hit);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(forward.proposer_gender, 0);
  EXPECT_EQ(backward.proposer_gender, 1);

  // Same edge again: replayed, not recomputed.
  const auto replay = run_binding(inst, {0, 1}, options, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(replay.proposer_match, forward.proposer_match);

  // Same edge, different engine: distinct key (same matching by confluence).
  options.engine = GsEngine::rounds;
  const auto rounds = run_binding(inst, {0, 1}, options, &hit);
  EXPECT_FALSE(hit);
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(rounds.proposer_match, forward.proposer_match);
}

TEST(GsEdgeCache, GenderCountMismatchThrows) {
  Rng rng(43);
  const auto inst = gen::uniform(4, 4, rng);
  GsEdgeCache cache(3);  // built for a different instance shape
  BindingOptions options;
  options.cache = &cache;
  EXPECT_THROW(run_binding(inst, {0, 1}, options), ContractViolation);
}

TEST(GsEdgeCache, ProbePhasePrepaysTheSelectedTree) {
  const Gender k = 5;
  Rng rng(44);
  const auto inst = gen::uniform(k, 16, rng);
  GsEdgeCache cache(k);
  BindingOptions options;
  options.cache = &cache;

  // Cost-aware selection probes all k(k-1)/2 pairs, warming the cache...
  const auto tree = select_tree(inst, TreeObjective::min_cost, options);
  EXPECT_EQ(cache.size(), static_cast<std::size_t>(k) * (k - 1) / 2);
  // ...so binding along the selected tree replays every edge for free.
  const auto result = iterative_binding(inst, tree, options);
  EXPECT_EQ(result.cache_hits, k - 1);
  EXPECT_EQ(result.cache_misses, 0);
  EXPECT_EQ(result.executed_proposals, 0);
  EXPECT_GT(result.total_proposals, 0);
  // And it matches the uncached convenience wrapper bit for bit.
  const auto uncached = cost_aware_binding(inst, TreeObjective::min_cost);
  EXPECT_EQ(result.matching(), uncached.matching());
}

TEST(GsEdgeCache, LadderRetriesWithInjectedFaultsAreCacheInvariant) {
  const Gender k = 5;
  Rng rng(45);
  const auto inst = gen::uniform(k, 8, rng);

  // Fire on the 2nd and 4th binding-edge hits: attempt 1 completes one edge
  // and dies, attempt 2 completes one edge and dies, attempt 3 runs through.
  resilience::FaultConfig config;
  config.fire_after = 1;
  config.probability = 1.0;
  config.max_fires = 2;

  resilience::FallbackOptions ladder;
  ladder.max_tree_attempts = 4;

  resilience::FallbackReport uncached;
  {
    resilience::ScopedFault fault("core/binding_edge", config);
    uncached = resilience::solve_with_fallback(inst, ladder);
  }

  GsEdgeCache cache(k);
  ladder.cache = &cache;
  resilience::FallbackReport cached;
  {
    resilience::ScopedFault fault("core/binding_edge", config);
    cached = resilience::solve_with_fallback(inst, ladder);
  }

  // Identical observable outcome: same rung, same retry path, same matching.
  ASSERT_TRUE(uncached.succeeded);
  ASSERT_TRUE(cached.succeeded);
  EXPECT_EQ(cached.rung, uncached.rung);
  EXPECT_EQ(cached.attempts.size(), uncached.attempts.size());
  EXPECT_EQ(cached.matching(), uncached.matching());
  EXPECT_EQ(cached.result->total_proposals, uncached.result->total_proposals);
  EXPECT_EQ(uncached.cache_hits, 0);
  EXPECT_GT(cached.cache_misses, 0);

  // Re-running the ladder against the warm cache (the serving shape: the
  // same request retried) replays every completed edge — identical outcome,
  // strictly less executed work, and fault hits counted identically so the
  // retry path is unchanged.
  resilience::FallbackReport warm;
  {
    resilience::ScopedFault fault("core/binding_edge", config);
    warm = resilience::solve_with_fallback(inst, ladder);
  }
  ASSERT_TRUE(warm.succeeded);
  EXPECT_EQ(warm.rung, uncached.rung);
  EXPECT_EQ(warm.attempts.size(), uncached.attempts.size());
  EXPECT_EQ(warm.matching(), uncached.matching());
  EXPECT_GT(warm.cache_hits, 0);
  EXPECT_LT(warm.executed_proposals, uncached.executed_proposals);
}

TEST(GsEdgeCache, ClearResetsEntriesAndCounters) {
  Rng rng(46);
  const auto inst = gen::uniform(3, 6, rng);
  GsEdgeCache cache(3);
  BindingOptions options;
  options.cache = &cache;
  run_binding(inst, {0, 1}, options);
  run_binding(inst, {0, 1}, options);
  EXPECT_EQ(cache.stats().hits, 1);
  EXPECT_EQ(cache.clear(), 1u);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().hits, 0);
  EXPECT_EQ(cache.stats().misses, 0);
  bool hit = true;
  run_binding(inst, {0, 1}, options, &hit);
  EXPECT_FALSE(hit);
}

// ---------------------------------------------------------------------------
// Staleness guard and targeted invalidation (the incremental-rematch half of
// the cache contract; see docs/INCREMENTAL.md).

TEST(GsEdgeCache, GenerationBoundCacheRejectsMutatedInstance) {
  Rng rng(47);
  auto inst = gen::uniform(3, 6, rng);
  GsEdgeCache cache(inst);  // instance-bound: guard armed
  ASSERT_TRUE(cache.bound_generation().has_value());
  EXPECT_EQ(*cache.bound_generation(), inst.generation());

  BindingOptions options;
  options.cache = &cache;
  run_binding(inst, {0, 1}, options);  // warm while clean: fine

  inst.swap_pref_entries({0, 0}, 1, 0, 1);  // bumps generation()
  EXPECT_NE(*cache.bound_generation(), inst.generation());
  // Every cached entry point must refuse to serve against mutated rows.
  EXPECT_THROW(cache.check_instance(inst), std::logic_error);
  EXPECT_THROW(run_binding(inst, {0, 1}, options), std::logic_error);
  const auto tree = trees::star(3, 0);
  EXPECT_THROW(iterative_binding(inst, tree, options), std::logic_error);

  // Dropping the cache restores plain (correct, uncached) solving.
  options.cache = nullptr;
  EXPECT_FALSE(run_binding(inst, {0, 1}, options).proposer_match.empty());
}

TEST(GsEdgeCache, LegacyGenderBoundCacheKeepsGuardOff) {
  Rng rng(48);
  auto inst = gen::uniform(3, 6, rng);
  GsEdgeCache cache(Gender{3});  // legacy ctor: caller owns the pairing
  EXPECT_FALSE(cache.bound_generation().has_value());
  BindingOptions options;
  options.cache = &cache;
  run_binding(inst, {0, 1}, options);
  inst.swap_pref_entries({0, 0}, 1, 0, 1);
  // No generation recorded, so only the gender count is checked. (This is
  // the documented legacy hazard: the result may now be stale.)
  EXPECT_NO_THROW(cache.check_instance(inst));
  bool hit = false;
  run_binding(inst, {0, 1}, options, &hit);
  EXPECT_TRUE(hit);
}

TEST(GsEdgeCache, InvalidateResetsOnlyTheTargetedEdge) {
  const Gender k = 4;
  Rng rng(49);
  auto inst = gen::uniform(k, 6, rng);
  GsEdgeCache cache(inst);
  BindingOptions options;
  options.cache = &cache;
  // Warm one oriented edge per unordered pair plus the reverse of (0,1).
  run_binding(inst, {0, 1}, options);
  run_binding(inst, {1, 0}, options);
  run_binding(inst, {1, 2}, options);
  run_binding(inst, {2, 3}, options);
  ASSERT_EQ(cache.size(), 4u);
  const auto stats_before = cache.stats();

  // Mutate a (0, 1) row, then invalidate exactly that pair's orientations.
  inst.swap_pref_entries({0, 2}, 1, 1, 3);
  EXPECT_EQ(cache.invalidate({0, 1}), 1u);
  EXPECT_EQ(cache.invalidate({1, 0}), 1u);
  // Untouched pairs keep their entries; a second invalidate finds nothing.
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.invalidate({0, 1}), 0u);
  // Counters survive invalidate (unlike clear) — rematch accounting relies
  // on hit/miss totals accumulating across incremental steps.
  EXPECT_EQ(cache.stats().hits, stats_before.hits);
  EXPECT_EQ(cache.stats().misses, stats_before.misses);

  // rebind() re-arms the guard at the new generation: cached solving works
  // again, replaying untouched edges and recomputing the invalidated ones.
  cache.rebind(inst);
  EXPECT_EQ(*cache.bound_generation(), inst.generation());
  bool hit = true;
  run_binding(inst, {0, 1}, options, &hit);
  EXPECT_FALSE(hit);  // invalidated: recomputed
  run_binding(inst, {1, 2}, options, &hit);
  EXPECT_TRUE(hit);  // untouched: replayed
  run_binding(inst, {2, 3}, options, &hit);
  EXPECT_TRUE(hit);
}

TEST(GsEdgeCache, RebindRequiresMatchingGenderCount) {
  Rng rng(50);
  const auto inst3 = gen::uniform(3, 4, rng);
  const auto inst4 = gen::uniform(4, 4, rng);
  GsEdgeCache cache(inst3);
  EXPECT_THROW(cache.rebind(inst4), ContractViolation);
  EXPECT_NO_THROW(cache.rebind(inst3));
}

// ---------------------------------------------------------------------------
// Striped single-flight concurrency (the TreeSweep fan-out shape). These
// tests are the TSan targets for the cache: 8+ threads hammering every key of
// one cache, with per-key compute counters proving the exactly-once contract.

/// A recognizable GsResult for `edge` that passes the cache's gender checks
/// without running GS (the stress tests count *computes*, not matchings).
gs::GsResult fabricated(GenderEdge edge) {
  gs::GsResult r;
  r.proposer_gender = edge.a;
  r.responder_gender = edge.b;
  r.proposals = static_cast<std::int64_t>(edge.a) * 100 + edge.b;
  r.engine = "fabricated";
  return r;
}

/// Hammers every oriented edge of a k-gender cache from `threads` threads and
/// returns the per-key compute counts (indexed a*k+b).
std::vector<int> hammer(GsEdgeCache& cache, Gender k, int threads,
                        std::atomic<std::int64_t>& calls) {
  std::vector<std::atomic<int>> computes(static_cast<std::size_t>(k) *
                                         static_cast<std::size_t>(k));
  std::atomic<int> ready{0};
  std::vector<std::thread> crew;
  crew.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    crew.emplace_back([&, t] {
      ready.fetch_add(1);
      while (ready.load() < threads) std::this_thread::yield();
      // Each thread walks the edges from a different offset so every key
      // sees concurrent first-lookups from several threads.
      std::vector<GenderEdge> edges;
      for (Gender a = 0; a < k; ++a) {
        for (Gender b = 0; b < k; ++b) {
          if (a != b) edges.push_back({a, b});
        }
      }
      for (std::size_t i = 0; i < edges.size(); ++i) {
        const GenderEdge edge =
            edges[(i + static_cast<std::size_t>(t)) % edges.size()];
        const auto& r = cache.get_or_compute(edge, GsEngine::queue, [&] {
          computes[static_cast<std::size_t>(edge.a) *
                       static_cast<std::size_t>(k) +
                   static_cast<std::size_t>(edge.b)]
              .fetch_add(1);
          // Hold the slot long enough that other threads actually pile up
          // on it (single-flight waiters / duplicate computes).
          std::this_thread::sleep_for(std::chrono::microseconds(200));
          return fabricated(edge);
        });
        calls.fetch_add(1);
        // Served value is the published one for THIS key, never a
        // neighbouring slot's (the striped locks guard slots, not keys).
        if (r.proposer_gender != edge.a || r.responder_gender != edge.b) {
          std::abort();
        }
      }
    });
  }
  for (auto& th : crew) th.join();
  std::vector<int> out(computes.size());
  for (std::size_t i = 0; i < computes.size(); ++i) out[i] = computes[i].load();
  return out;
}

TEST(GsEdgeCacheConcurrency, SingleFlightComputesEachKeyExactlyOnce) {
  const Gender k = 5;
  const auto keys = static_cast<std::int64_t>(k) * (k - 1);
  for (int round = 0; round < 10; ++round) {
    GsEdgeCache cache(k);
    std::atomic<std::int64_t> calls{0};
    const std::vector<int> computes = hammer(cache, k, /*threads=*/8, calls);

    // THE zero-duplicate guarantee: concurrent misses on one key collapse to
    // exactly one compute, every round, no matter the interleaving.
    for (Gender a = 0; a < k; ++a) {
      for (Gender b = 0; b < k; ++b) {
        const int count =
            computes[static_cast<std::size_t>(a) * static_cast<std::size_t>(k) +
                     static_cast<std::size_t>(b)];
        EXPECT_EQ(count, a == b ? 0 : 1)
            << "edge (" << a << ',' << b << ") round " << round;
      }
    }
    EXPECT_EQ(cache.size(), static_cast<std::size_t>(keys));
    const auto stats = cache.stats();
    // Every lookup counted exactly one hit or miss; misses == published
    // computes == keys; a wait is always also a hit.
    EXPECT_EQ(stats.hits + stats.misses, calls.load());
    EXPECT_EQ(stats.misses, keys);
    EXPECT_LE(stats.single_flight_waits, stats.hits);
  }
}

TEST(GsEdgeCacheConcurrency, DuplicatePolicyMeasurablyRecomputes) {
  const Gender k = 5;
  const auto keys = static_cast<std::int64_t>(k) * (k - 1);
  std::int64_t total_computes = 0;
  for (int round = 0; round < 10; ++round) {
    GsEdgeCache cache(k, GsEdgeCache::Policy::duplicate);
    std::atomic<std::int64_t> calls{0};
    const std::vector<int> computes = hammer(cache, k, /*threads=*/8, calls);

    std::int64_t round_computes = 0;
    for (const int count : computes) round_computes += count;
    total_computes += round_computes;
    // Each key computed at least once; first publish won, so the table still
    // holds one entry per key.
    EXPECT_GE(round_computes, keys);
    EXPECT_EQ(cache.size(), static_cast<std::size_t>(keys));
    const auto stats = cache.stats();
    // Counting contract under duplication: every compute (published or beaten
    // to the publish) counts one miss, everything else is a hit, and the
    // single-flight wait path is never taken.
    EXPECT_EQ(stats.misses, round_computes);
    EXPECT_EQ(stats.hits + stats.misses, calls.load());
    EXPECT_EQ(stats.single_flight_waits, 0);
  }
  // What the E18 ablation measures: across rounds, the legacy policy performs
  // duplicate GS computes that single-flight provably never does. (Any one
  // round may get lucky; ten rounds of 8 threads piling onto cold keys do
  // not.)
  EXPECT_GT(total_computes, 10 * keys);
}

TEST(GsEdgeCacheConcurrency, LeaderExceptionPromotesNextCaller) {
  GsEdgeCache cache(3);
  struct Boom {};
  // Leader's compute dies: the claim must roll back so the key is not wedged
  // in kComputing forever.
  EXPECT_THROW(cache.get_or_compute({0, 1}, GsEngine::queue,
                                    []() -> gs::GsResult { throw Boom{}; }),
               Boom);
  EXPECT_EQ(cache.size(), 0u);
  // The next caller is promoted to leader and computes normally.
  bool hit = true;
  const auto& r = cache.get_or_compute(
      {0, 1}, GsEngine::queue, [] { return fabricated({0, 1}); }, nullptr,
      &hit);
  EXPECT_FALSE(hit);
  EXPECT_EQ(r.proposals, 1);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(GsEdgeCacheConcurrency, BlockedWaiterHonorsItsOwnDeadline) {
  GsEdgeCache cache(3);
  std::atomic<bool> leader_in{false};
  std::atomic<bool> release{false};
  std::thread leader([&] {
    cache.get_or_compute({0, 1}, GsEngine::queue, [&] {
      leader_in.store(true);
      while (!release.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      return fabricated({0, 1});
    });
  });
  while (!leader_in.load()) std::this_thread::yield();

  // The waiter's own deadline fires while the leader is still computing: the
  // wait must abort (via the poll interval) instead of blocking until the
  // leader finishes.
  resilience::ExecControl control(resilience::Budget::deadline(1.0));
  EXPECT_THROW(cache.get_or_compute(
                   {0, 1}, GsEngine::queue, [] { return fabricated({0, 1}); },
                   &control),
               ExecutionAborted);

  release.store(true);
  leader.join();
  // The leader still published; an unbudgeted lookup now hits.
  bool hit = false;
  cache.get_or_compute(
      {0, 1}, GsEngine::queue, [] { return fabricated({0, 1}); }, nullptr,
      &hit);
  EXPECT_TRUE(hit);
}

}  // namespace
}  // namespace kstable::core
