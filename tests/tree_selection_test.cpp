// Tests for cost-aware binding-tree selection (§IV.B ablation) and the
// extra preference generators (euclidean / tiered) and DOT emitters.
#include <gtest/gtest.h>

#include "analysis/dot.hpp"
#include "analysis/metrics.hpp"
#include "analysis/stability.hpp"
#include "core/tree_selection.hpp"
#include "prefs/generators.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace kstable::core {
namespace {

TEST(PairProbe, CoversAllUnorderedPairs) {
  Rng rng(1400);
  const auto inst = gen::uniform(5, 6, rng);
  const auto probes = probe_all_pairs(inst);
  EXPECT_EQ(probes.size(), 10U);  // C(5, 2)
  for (const auto& probe : probes) {
    EXPECT_LT(probe.edge.a, probe.edge.b);
    EXPECT_GE(probe.cost, 0);
    EXPECT_GE(probe.proposals, 6);
  }
}

TEST(TreeSelection, ProducesSpanningTrees) {
  Rng rng(1401);
  const auto inst = gen::uniform(6, 8, rng);
  const auto min_tree = select_tree(inst, TreeObjective::min_cost);
  const auto max_tree = select_tree(inst, TreeObjective::max_cost);
  EXPECT_TRUE(min_tree.is_spanning_tree());
  EXPECT_TRUE(max_tree.is_spanning_tree());
}

TEST(TreeSelection, MinTreeBeatsMaxTreeOnBoundPairCost) {
  Rng rng(1402);
  int min_wins = 0;
  const int trials = 12;
  for (int trial = 0; trial < trials; ++trial) {
    const auto inst = gen::popularity(5, 16, rng, 0.5);
    const auto min_result = cost_aware_binding(inst, TreeObjective::min_cost);
    const auto max_result = cost_aware_binding(inst, TreeObjective::max_cost);
    const auto min_tree = select_tree(inst, TreeObjective::min_cost);
    const auto max_tree = select_tree(inst, TreeObjective::max_cost);
    const auto min_cost =
        analysis::kary_tree_costs(inst, min_result.matching(), min_tree)
            .total_cost;
    const auto max_cost =
        analysis::kary_tree_costs(inst, max_result.matching(), max_tree)
            .total_cost;
    min_wins += (min_cost <= max_cost);
  }
  EXPECT_GT(min_wins, trials / 2);
}

TEST(TreeSelection, ResultIsStillStable) {
  Rng rng(1403);
  for (const auto objective : {TreeObjective::min_cost, TreeObjective::max_cost}) {
    const auto inst = gen::uniform(4, 4, rng);
    const auto result = cost_aware_binding(inst, objective);
    EXPECT_FALSE(
        analysis::find_blocking_family(inst, result.matching()).has_value());
  }
}

TEST(GeneratorsExtra, EuclideanIsValidAndMutuallyConsistent) {
  Rng rng(1404);
  const auto inst = gen::euclidean(3, 12, 2, rng);
  EXPECT_NO_THROW(inst.validate());
  // Geometric consistency: if b is a's nearest member of gender 1 and a is
  // b's nearest member of gender 0, they form a mutual top pair; such a pair
  // always exists (the globally closest cross pair). Find it.
  bool mutual_top_exists = false;
  for (Index i = 0; i < 12 && !mutual_top_exists; ++i) {
    const Index b = inst.pref_list({0, i}, 1)[0];
    mutual_top_exists = inst.pref_list({1, b}, 0)[0] == i;
  }
  EXPECT_TRUE(mutual_top_exists);
  EXPECT_THROW(gen::euclidean(3, 4, 0, rng), ContractViolation);
}

TEST(GeneratorsExtra, TieredRespectsTierOrder) {
  Rng rng(1405);
  const std::int32_t tiers = 3;
  const Index n = 9;
  const auto inst = gen::tiered(2, n, tiers, rng);
  EXPECT_NO_THROW(inst.validate());
  // All observers of a gender agree on the tier boundaries: the set of
  // members in the first n/tiers positions is the same for every observer.
  std::vector<std::set<Index>> first_tier;
  for (Index i = 0; i < n; ++i) {
    const auto list = inst.pref_list({0, i}, 1);
    first_tier.emplace_back(list.begin(), list.begin() + n / tiers);
  }
  for (std::size_t i = 1; i < first_tier.size(); ++i) {
    EXPECT_EQ(first_tier[i], first_tier[0]);
  }
  EXPECT_THROW(gen::tiered(2, 4, 0, rng), ContractViolation);
  EXPECT_THROW(gen::tiered(2, 4, 5, rng), ContractViolation);
}

TEST(GeneratorsExtra, TieredOneTierIsUniformLike) {
  Rng rng(1406);
  const auto inst = gen::tiered(2, 6, 1, rng);
  EXPECT_NO_THROW(inst.validate());
}

TEST(Dot, BindingStructureEmission) {
  BindingStructure tree(3);
  tree.add_edge({0, 1});
  tree.add_edge({1, 2});
  const std::string dot = analysis::to_dot(tree);
  EXPECT_NE(dot.find("graph binding_structure"), std::string::npos);
  EXPECT_NE(dot.find("g0 -- g1"), std::string::npos);
  EXPECT_NE(dot.find("g1 -- g2"), std::string::npos);
}

TEST(Dot, MatchingEmission) {
  const KaryMatching matching(3, 2, {0, 0, 0, 1, 1, 1});
  const std::string dot = analysis::to_dot(matching);
  EXPECT_NE(dot.find("cluster_family_0"), std::string::npos);
  EXPECT_NE(dot.find("cluster_family_1"), std::string::npos);
  EXPECT_NE(dot.find("\"a0\""), std::string::npos);
  EXPECT_NE(dot.find("\"c1\""), std::string::npos);
}

}  // namespace
}  // namespace kstable::core
