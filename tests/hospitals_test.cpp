// Tests for the hospitals/residents (college admission) extension (§V.A).
#include <gtest/gtest.h>

#include "gs/hospitals.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace kstable::hr {
namespace {

TEST(HrInstance, ValidationRejectsMalformedInput) {
  // Incomplete resident prefs.
  EXPECT_THROW(HrInstance({{0}}, {{0}, {0}}, {1, 1}), ContractViolation);
  // Duplicate entry.
  EXPECT_THROW(HrInstance({{0, 0}}, {{0}, {0}}, {1, 1}), ContractViolation);
  // Negative capacity.
  EXPECT_THROW(HrInstance({{0}}, {{0}}, {-1}), ContractViolation);
  // Wrong capacity vector length.
  EXPECT_THROW(HrInstance({{0}}, {{0}}, {1, 1}), ContractViolation);
  EXPECT_NO_THROW(HrInstance({{0}}, {{0}}, {1}));
}

TEST(Hr, OneToOneReducesToSmp) {
  // 2 residents, 2 hospitals with capacity 1 == Example 1's first instance.
  const HrInstance inst({{0, 1}, {0, 1}},   // both residents want hospital 0
                        {{1, 0}, {1, 0}},   // both hospitals prefer resident 1
                        {1, 1});
  const auto result = solve_residents_propose(inst);
  EXPECT_EQ(result.assignment[1], 0);  // preferred resident wins hospital 0
  EXPECT_EQ(result.assignment[0], 1);
  EXPECT_TRUE(is_stable(inst, result));
}

TEST(Hr, CapacityTwoTakesBothResidents) {
  const HrInstance inst({{0, 1}, {0, 1}}, {{0, 1}, {0, 1}}, {2, 0});
  const auto result = solve_residents_propose(inst);
  EXPECT_EQ(result.assignment[0], 0);
  EXPECT_EQ(result.assignment[1], 0);
  EXPECT_EQ(result.rosters[0].size(), 2U);
}

TEST(Hr, ZeroCapacityHospitalIsSkipped) {
  const HrInstance inst({{0, 1}, {0, 1}}, {{0, 1}, {0, 1}}, {0, 2});
  const auto result = solve_residents_propose(inst);
  EXPECT_TRUE(result.rosters[0].empty());
  EXPECT_EQ(result.rosters[1].size(), 2U);
  EXPECT_TRUE(is_stable(inst, result));
}

TEST(Hr, InsufficientCapacityLeavesResidentsUnassigned) {
  const HrInstance inst({{0}, {0}, {0}}, {{2, 1, 0}}, {2});
  const auto result = solve_residents_propose(inst);
  int unassigned = 0;
  for (const auto h : result.assignment) unassigned += (h < 0);
  EXPECT_EQ(unassigned, 1);
  // The hospital keeps its two favourites.
  EXPECT_EQ(result.assignment[0], -1);
  EXPECT_TRUE(is_stable(inst, result));
}

TEST(Hr, RandomSweepStableAndResidentOptimal) {
  Rng rng(1200);
  for (int trial = 0; trial < 30; ++trial) {
    const auto n = static_cast<Resident>(4 + rng.below(30));
    const auto m = static_cast<Hospital>(2 + rng.below(8));
    const auto inst = random_instance(n, m, 4, rng);
    const auto result = solve_residents_propose(inst);
    EXPECT_TRUE(is_stable(inst, result)) << "trial " << trial;
    // Sufficient capacity => everyone assigned.
    for (const auto h : result.assignment) EXPECT_GE(h, 0);
    // Proposals bounded by n*m.
    EXPECT_LE(result.proposals, static_cast<std::int64_t>(n) * m);
  }
}

TEST(Hr, StabilityCheckerCatchesViolations) {
  const HrInstance inst({{0, 1}, {1, 0}}, {{0, 1}, {1, 0}}, {1, 1});
  // Everyone gets their first choice and is each hospital's favourite.
  HrResult good;
  good.assignment = {0, 1};
  good.rosters = {{0}, {1}};
  EXPECT_TRUE(is_stable(inst, good));
  // Swap the assignment: now (0, hospital 0) is a blocking pair.
  HrResult bad;
  bad.assignment = {1, 0};
  bad.rosters = {{1}, {0}};
  EXPECT_FALSE(is_stable(inst, bad));
  // Over-capacity roster is rejected.
  HrResult overfull;
  overfull.assignment = {0, 0};
  overfull.rosters = {{0, 1}, {}};
  EXPECT_FALSE(is_stable(inst, overfull));
}

TEST(Hr, RandomInstanceRespectsSufficiencyFlag) {
  Rng rng(1201);
  const auto sufficient = random_instance(20, 3, 2, rng, true);
  EXPECT_GE(sufficient.total_capacity(), 20);
  // Non-sufficient instances keep their raw random capacities.
  const auto raw = random_instance(50, 2, 2, rng, false);
  EXPECT_LE(raw.total_capacity(), 4);
}

}  // namespace
}  // namespace kstable::hr
