// Tests for the parallel binding executor and PRAM cost model
// (§IV.C, Corollaries 1-2).
#include <gtest/gtest.h>

#include "core/parallel_binding.hpp"
#include "graph/prufer.hpp"
#include "parallel/pram.hpp"
#include "parallel/thread_pool.hpp"
#include "prefs/generators.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace kstable::core {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.thread_count(), 3U);
  auto f = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, ForEachIndexCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.for_each_index(100, [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ForEachIndexPropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.for_each_index(
                   10,
                   [](std::size_t i) {
                     if (i == 5) throw std::runtime_error("boom");
                   }),
               std::runtime_error);
}

TEST(ThreadPool, ZeroCountIsNoop) {
  ThreadPool pool(1);
  EXPECT_NO_THROW(pool.for_each_index(0, [](std::size_t) { FAIL(); }));
}

TEST(Pram, CeilLog2Values) {
  EXPECT_EQ(pram::ceil_log2(1), 0);
  EXPECT_EQ(pram::ceil_log2(2), 1);
  EXPECT_EQ(pram::ceil_log2(3), 2);
  EXPECT_EQ(pram::ceil_log2(4), 2);
  EXPECT_EQ(pram::ceil_log2(5), 3);
  EXPECT_THROW(pram::ceil_log2(0), ContractViolation);
}

TEST(Pram, ErewChargesColoringRounds) {
  // Star on 4 genders: Δ = 3 rounds, each charged its single edge's cost.
  const auto star = trees::star(4, 0);
  const std::vector<std::int64_t> iters{10, 20, 30};
  const auto report = pram::charge(star, iters, pram::Model::erew, 5);
  EXPECT_EQ(report.matching_rounds, 3);
  EXPECT_EQ(report.charged_iterations, 60);  // one edge per round
  EXPECT_EQ(report.sequential_iterations, 60);
  EXPECT_EQ(report.replication_rounds, 0);
}

TEST(Pram, ErewOnPathOverlapsRounds) {
  // Path 0-1-2-3: two rounds {e0, e2}, {e1}; charged = max(10,30) + 20.
  const auto path = trees::path(4);
  const std::vector<std::int64_t> iters{10, 20, 30};
  const auto report = pram::charge(path, iters, pram::Model::erew, 5);
  EXPECT_EQ(report.matching_rounds, 2);  // Corollary 2
  EXPECT_EQ(report.charged_iterations, 50);
  EXPECT_GT(report.model_speedup(), 1.0);
}

TEST(Pram, CrewSingleRound) {
  const auto star = trees::star(5, 2);
  const std::vector<std::int64_t> iters{7, 9, 4, 9};
  const auto report = pram::charge(star, iters, pram::Model::crew, 3);
  EXPECT_EQ(report.matching_rounds, 1);
  EXPECT_EQ(report.charged_iterations, 9);
  EXPECT_EQ(report.replication_cost, 0);
}

TEST(Pram, ErewEmulatingCrewAddsReplication) {
  const auto star = trees::star(5, 2);  // Δ = 4 -> 2 replication rounds
  const std::vector<std::int64_t> iters{7, 9, 4, 9};
  const Index n = 3;
  const auto report =
      pram::charge(star, iters, pram::Model::erew_emulating_crew, n);
  EXPECT_EQ(report.replication_rounds, 2);  // ceil(log2 4)
  EXPECT_EQ(report.replication_cost, 2 * n);
  EXPECT_EQ(report.matching_rounds, 1);
  EXPECT_EQ(report.total_cost(), 9 + 2 * n);
}

TEST(Pram, RejectsMismatchedIterationCounts) {
  const auto path = trees::path(3);
  EXPECT_THROW(pram::charge(path, std::vector<std::int64_t>{1},
                            pram::Model::erew, 2),
               ContractViolation);
  EXPECT_THROW(pram::charge(path, std::vector<std::int64_t>{1, -2},
                            pram::Model::erew, 2),
               ContractViolation);
}

TEST(ExecuteBinding, AllModesProduceIdenticalMatchings) {
  Rng rng(400);
  const auto inst = gen::uniform(5, 16, rng);
  const auto tree = prufer::random_tree(5, rng);
  ThreadPool pool(4);
  const auto seq = execute_binding(inst, tree, ExecutionMode::sequential, pool);
  const auto erew = execute_binding(inst, tree, ExecutionMode::erew_rounds, pool);
  const auto crew = execute_binding(inst, tree, ExecutionMode::crew_full, pool);
  ASSERT_TRUE(seq.binding.has_matching());
  EXPECT_EQ(seq.binding.matching(), erew.binding.matching());
  EXPECT_EQ(seq.binding.matching(), crew.binding.matching());
  EXPECT_EQ(seq.binding.total_proposals, erew.binding.total_proposals);
  EXPECT_EQ(seq.binding.total_proposals, crew.binding.total_proposals);
}

TEST(ExecuteBinding, RoundCountsMatchModels) {
  Rng rng(401);
  const auto inst = gen::uniform(6, 8, rng);
  ThreadPool pool(4);

  const auto path = trees::path(6);
  const auto path_report =
      execute_binding(inst, path, ExecutionMode::erew_rounds, pool);
  EXPECT_EQ(path_report.rounds_executed, 2);  // Corollary 2 / Fig. 4

  const auto star = trees::star(6, 0);
  const auto star_report =
      execute_binding(inst, star, ExecutionMode::erew_rounds, pool);
  EXPECT_EQ(star_report.rounds_executed, 5);  // Δ rounds (Corollary 1)

  const auto crew_report =
      execute_binding(inst, star, ExecutionMode::crew_full, pool);
  EXPECT_EQ(crew_report.rounds_executed, 1);

  const auto seq_report =
      execute_binding(inst, star, ExecutionMode::sequential, pool);
  EXPECT_EQ(seq_report.rounds_executed, 5);  // one edge at a time
}

TEST(ExecuteBinding, ChargedCostWithinCorollary1Bound) {
  Rng rng(402);
  for (int trial = 0; trial < 10; ++trial) {
    const Gender k = 6;
    const Index n = 12;
    const auto inst = gen::uniform(k, n, rng);
    const auto tree = prufer::random_tree(k, rng);
    ThreadPool pool(4);
    const auto report =
        execute_binding(inst, tree, ExecutionMode::erew_rounds, pool);
    // Corollary 1: at most Δ·n² charged iterations under EREW.
    EXPECT_LE(report.cost.charged_iterations,
              static_cast<std::int64_t>(tree.max_degree()) * n * n);
    EXPECT_EQ(report.cost.sequential_iterations,
              report.binding.total_proposals);
  }
}

TEST(ExecuteBinding, ThreadCountDoesNotChangeResult) {
  Rng rng(403);
  const auto inst = gen::uniform(4, 10, rng);
  const auto tree = trees::path(4);
  ThreadPool pool1(1);
  ThreadPool pool8(8);
  const auto a = execute_binding(inst, tree, ExecutionMode::crew_full, pool1);
  const auto b = execute_binding(inst, tree, ExecutionMode::crew_full, pool8);
  EXPECT_EQ(a.binding.matching(), b.binding.matching());
}

TEST(ExecuteBinding, RejectsCyclicStructures) {
  Rng rng(404);
  const auto inst = gen::uniform(3, 2, rng);
  BindingStructure cycle(3);
  cycle.add_edge({0, 1});
  cycle.add_edge({1, 2});
  cycle.add_edge({2, 0});
  ThreadPool pool(2);
  EXPECT_THROW(execute_binding(inst, cycle, ExecutionMode::crew_full, pool),
               ContractViolation);
}

TEST(ExecuteBinding, ForestExecutesAndAssembles) {
  Rng rng(405);
  const auto inst = gen::uniform(5, 4, rng);
  BindingStructure forest(5);
  forest.add_edge({0, 1});
  forest.add_edge({2, 3});
  ThreadPool pool(2);
  const auto report =
      execute_binding(inst, forest, ExecutionMode::erew_rounds, pool);
  EXPECT_EQ(report.rounds_executed, 1);  // disjoint edges share a round
  EXPECT_TRUE(report.binding.equivalence.consistent);
}

}  // namespace
}  // namespace kstable::core
