// Overhead tests for the observability layer: this binary replaces the global
// operator new/delete with counting hooks and asserts that the instrumented
// GS hot path stays allocation-free once its handles are resolved — i.e. the
// macros cost one relaxed fetch_add, never a registry lookup or a heap
// allocation. Built with KSTABLE_NO_METRICS the same assertions hold
// trivially (the macros expand to ((void)0)); the enabled build is the
// interesting case and the one CI runs.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "core/binding.hpp"
#include "gs/gale_shapley.hpp"
#include "observability/metrics.hpp"
#include "observability/telemetry.hpp"
#include "prefs/generators.hpp"
#include "util/rng.hpp"

namespace {
std::atomic<std::int64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size > 0 ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size > 0 ? size : 1)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace kstable {
namespace {

template <typename Fn>
std::int64_t allocations_during(Fn&& fn) {
  const std::int64_t before = g_allocations.load(std::memory_order_relaxed);
  fn();
  return g_allocations.load(std::memory_order_relaxed) - before;
}

TEST(MetricsOverhead, CounterBumpAllocatesNothing) {
#if KSTABLE_METRICS_ENABLED
  // Resolve the handles once (may allocate: registry growth + name strings).
  KSTABLE_COUNTER_ADD("overhead.test.counter", 1);
  KSTABLE_GAUGE_SET("overhead.test.counter2", 0);
  KSTABLE_HISTOGRAM_OBSERVE("overhead.test.hist", 0);
#endif
  const std::int64_t allocs = allocations_during([&] {
    for (int i = 0; i < 1000; ++i) {
      KSTABLE_COUNTER_ADD("overhead.test.counter", 1);
      KSTABLE_GAUGE_SET("overhead.test.counter2", i);
      KSTABLE_HISTOGRAM_OBSERVE("overhead.test.hist", i);
    }
  });
  EXPECT_EQ(allocs, 0);
}

TEST(MetricsOverhead, RegistryLookupHitAllocatesNothing) {
#if KSTABLE_METRICS_ENABLED
  auto& registry = obs::MetricsRegistry::global();
  registry.counter("overhead.test.lookup");
  // Heterogeneous string_view lookup: a repeat lookup must not build a
  // temporary std::string.
  const std::int64_t allocs = allocations_during([&] {
    for (int i = 0; i < 100; ++i) registry.counter("overhead.test.lookup");
  });
  EXPECT_EQ(allocs, 0);
#else
  GTEST_SKIP() << "registry compiled out";
#endif
}

TEST(MetricsOverhead, InstrumentedGsHotPathStaysAllocationFree) {
  Rng rng(81);
  const Index n = 48;
  const auto inst = gen::uniform(3, n, rng);
  gs::GsWorkspace workspace;
  gs::GsResult result;
  workspace.warm(n);
  gs::warm_result(result, n);
  // The engines' instruments register at static-init time, so with a warm
  // workspace even the FIRST instrumented solve allocates nothing — the
  // macros cost one relaxed fetch_add each.
  const std::int64_t first = allocations_during(
      [&] { gs::gale_shapley_queue(inst, 0, 1, {}, workspace, result); });
  EXPECT_EQ(first, 0);
  const std::int64_t steady = allocations_during([&] {
    for (int i = 0; i < 10; ++i) {
      gs::gale_shapley_queue(inst, 1, 2, {}, workspace, result);
      gs::gale_shapley_rounds(inst, 2, 0, {}, workspace, result);
    }
  });
  EXPECT_EQ(steady, 0);
}

TEST(MetricsOverhead, TelemetryStructIsHeapFree) {
  // Embedding SolveTelemetry in result structs must not add allocations:
  // labels are static strings and phases are a fixed array. (SolveStatus's
  // detail string is empty for ok solves, so no allocation there either.)
  volatile int observed_phases = 0;
  const std::int64_t allocs = allocations_during([&] {
    obs::SolveTelemetry t;
    t.engine = "overhead.test";
    t.add_phase("a", 1.0);
    t.add_phase("b", 2.0);
    t.proposals = 100;
    observed_phases = t.phase_count;
  });
  EXPECT_EQ(allocs, 0);
  EXPECT_EQ(observed_phases, 2);
}

}  // namespace
}  // namespace kstable
