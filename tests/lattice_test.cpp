// Tests for the SMP stable-matching lattice enumeration and exact optima.
#include <gtest/gtest.h>

#include <set>

#include "analysis/metrics.hpp"
#include "gs/gale_shapley.hpp"
#include "prefs/examples.hpp"
#include "prefs/generators.hpp"
#include "roommates/adapters.hpp"
#include "roommates/lattice.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace kstable::rm {
namespace {

/// Brute-force: all stable matchings of a bipartite instance by permutation
/// enumeration (small n only).
std::set<std::vector<Index>> brute_force_stable(const KPartiteInstance& inst,
                                                Gender men, Gender women) {
  const Index n = inst.per_gender();
  std::set<std::vector<Index>> stable;
  std::vector<Index> perm(static_cast<std::size_t>(n));
  for (Index i = 0; i < n; ++i) perm[static_cast<std::size_t>(i)] = i;
  do {
    bool ok = true;
    for (Index m = 0; m < n && ok; ++m) {
      for (Index w = 0; w < n && ok; ++w) {
        if (perm[static_cast<std::size_t>(m)] == w) continue;
        Index wp = -1;
        for (Index q = 0; q < n; ++q) {
          if (perm[static_cast<std::size_t>(q)] == w) wp = q;
        }
        if (inst.prefers({men, m}, {women, w},
                         {women, perm[static_cast<std::size_t>(m)]}) &&
            inst.prefers({women, w}, {men, m}, {men, wp})) {
          ok = false;
        }
      }
    }
    if (ok) stable.insert(perm);
  } while (std::next_permutation(perm.begin(), perm.end()));
  return stable;
}

TEST(Lattice, Example1FirstHasUniqueStableMatching) {
  const auto inst = kstable::examples::example1_first();
  const auto lattice = enumerate_stable_matchings(inst, 0, 1);
  ASSERT_EQ(lattice.matchings.size(), 1U);
  EXPECT_EQ(lattice.matchings[0], (std::vector<Index>{1, 0}));
  EXPECT_FALSE(lattice.truncated);
}

TEST(Lattice, Example1SecondHasTwoStableMatchings) {
  const auto inst = kstable::examples::example1_second();
  const auto lattice = enumerate_stable_matchings(inst, 0, 1);
  ASSERT_EQ(lattice.matchings.size(), 2U);
  // Man-optimal first.
  EXPECT_EQ(lattice.matchings[0], (std::vector<Index>{0, 1}));
  EXPECT_EQ(lattice.matchings[1], (std::vector<Index>{1, 0}));
}

TEST(Lattice, FirstEntryIsAlwaysManOptimal) {
  Rng rng(1000);
  for (int trial = 0; trial < 10; ++trial) {
    const auto inst = gen::uniform(2, 12, rng);
    const auto lattice = enumerate_stable_matchings(inst, 0, 1);
    const auto gs_result = gs::gale_shapley_queue(inst, 0, 1);
    ASSERT_FALSE(lattice.matchings.empty());
    EXPECT_EQ(lattice.matchings.front(), gs_result.proposer_match);
  }
}

TEST(Lattice, EnumerationMatchesBruteForce) {
  Rng rng(1001);
  for (int trial = 0; trial < 25; ++trial) {
    const Index n = static_cast<Index>(3 + rng.below(4));  // 3..6
    const auto inst = gen::uniform(2, n, rng);
    const auto lattice = enumerate_stable_matchings(inst, 0, 1);
    const auto brute = brute_force_stable(inst, 0, 1);
    EXPECT_EQ(lattice.matchings.size(), brute.size())
        << "n=" << n << " trial=" << trial;
    for (const auto& matching : lattice.matchings) {
      EXPECT_TRUE(brute.count(matching) == 1)
          << "lattice produced a non-stable matching";
    }
  }
}

TEST(Lattice, TruncationCap) {
  Rng rng(1002);
  // Master lists have a unique stable matching; use uniform with a retry loop
  // to get an instance with >= 2, then cap at 1.
  for (int trial = 0; trial < 20; ++trial) {
    const auto inst = gen::uniform(2, 8, rng);
    LatticeOptions options;
    options.max_matchings = 1;
    const auto lattice = enumerate_stable_matchings(inst, 0, 1, options);
    EXPECT_EQ(lattice.matchings.size(), 1U);
    const auto full = enumerate_stable_matchings(inst, 0, 1);
    if (full.matchings.size() > 1) {
      EXPECT_TRUE(lattice.truncated);
      return;  // exercised both branches
    }
  }
}

TEST(Lattice, WomanOptimalIsInTheLattice) {
  Rng rng(1003);
  for (int trial = 0; trial < 10; ++trial) {
    const auto inst = gen::uniform(2, 10, rng);
    const auto lattice = enumerate_stable_matchings(inst, 0, 1);
    const auto women_gs = gs::gale_shapley_queue(inst, 1, 0);
    std::vector<Index> as_man_match(10);
    for (Index w = 0; w < 10; ++w) {
      as_man_match[static_cast<std::size_t>(
          women_gs.proposer_match[static_cast<std::size_t>(w)])] = w;
    }
    EXPECT_NE(std::find(lattice.matchings.begin(), lattice.matchings.end(),
                        as_man_match),
              lattice.matchings.end());
  }
}

TEST(Lattice, OptimaAreOptimalAndStable) {
  Rng rng(1004);
  for (int trial = 0; trial < 10; ++trial) {
    const auto inst = gen::uniform(2, 8, rng);
    const auto lattice = enumerate_stable_matchings(inst, 0, 1);
    const auto egal = egalitarian_optimal(inst, 0, 1, lattice);
    const auto eq = sex_equal_optimal(inst, 0, 1, lattice);
    const auto regret = minimum_regret(inst, 0, 1, lattice);
    for (const auto& matching : lattice.matchings) {
      const auto costs = analysis::bipartite_costs(inst, 0, 1, matching);
      EXPECT_GE(costs.egalitarian(), egal.value);
      EXPECT_GE(costs.sex_equality(), eq.value);
      EXPECT_GE(std::max(costs.proposer_regret, costs.responder_regret),
                regret.value);
    }
  }
}

TEST(Lattice, HeuristicFairnessIsBoundedByExactOptimum) {
  // The §III.B alternate policy cannot beat the exact sex-equality optimum.
  Rng rng(1005);
  for (int trial = 0; trial < 10; ++trial) {
    const auto inst = gen::uniform(2, 10, rng);
    const auto lattice = enumerate_stable_matchings(inst, 0, 1);
    const auto exact = sex_equal_optimal(inst, 0, 1, lattice);
    const auto fair = solve_fair_smp(inst, 0, 1, FairPolicy::alternate);
    const auto fair_costs = analysis::bipartite_costs(inst, 0, 1, fair.man_match);
    EXPECT_GE(fair_costs.sex_equality(), exact.value);
    // And the heuristic's matching must itself be in the lattice (stable).
    EXPECT_NE(std::find(lattice.matchings.begin(), lattice.matchings.end(),
                        fair.man_match),
              lattice.matchings.end());
  }
}

TEST(Lattice, RejectsSameGenderArguments) {
  const auto inst = kstable::examples::example1_first();
  EXPECT_THROW(enumerate_stable_matchings(inst, 0, 0), ContractViolation);
}

}  // namespace
}  // namespace kstable::rm
