// Tests for Algorithm 1 (iterative binding GS): Theorem 2 stability,
// Theorem 3 proposal bound, Theorem 4 tightness, tree-shape sweeps.
#include <gtest/gtest.h>

#include <tuple>

#include "analysis/oracle.hpp"
#include "analysis/stability.hpp"
#include "core/binding.hpp"
#include "graph/prufer.hpp"
#include "prefs/examples.hpp"
#include "prefs/generators.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace kstable::core {
namespace {

TEST(IterativeBinding, Fig3ExampleMatchesPaper) {
  const auto inst = kstable::examples::fig3_instance();
  BindingStructure tree(3);
  tree.add_edge({0, 1});  // M - W
  tree.add_edge({1, 2});  // W - U
  const auto result = iterative_binding(inst, tree);
  ASSERT_TRUE(result.has_matching());
  const auto& m = result.matching();
  const Index fam = m.family_of({0, 0});
  EXPECT_EQ(m.member_at(fam, 1), (MemberId{1, 0}));  // (m, w, u)
  EXPECT_EQ(m.member_at(fam, 2), (MemberId{2, 0}));
  // Theorem 2: stable under the strict blocking condition.
  EXPECT_FALSE(analysis::find_blocking_family(inst, m).has_value());
}

TEST(IterativeBinding, AlternativeTreesGiveDifferentStableMatchings) {
  // §IV.B: bindings M-U and U-W give (m, w', u') and (m', w, u).
  const auto inst = kstable::examples::fig3_instance();
  BindingStructure tree(3);
  tree.add_edge({0, 2});  // M - U
  tree.add_edge({2, 1});  // U - W
  const auto result = iterative_binding(inst, tree);
  const auto& m = result.matching();
  const Index fam = m.family_of({0, 0});
  EXPECT_EQ(m.member_at(fam, 2), (MemberId{2, 1}));  // m with u'
  EXPECT_FALSE(analysis::find_blocking_family(inst, m).has_value());
}

TEST(IterativeBinding, RequiresSpanningTree) {
  Rng rng(210);
  const auto inst = gen::uniform(3, 2, rng);
  BindingStructure forest(3);
  forest.add_edge({0, 1});
  EXPECT_THROW(iterative_binding(inst, forest), ContractViolation);
}

/// Theorem 2 property sweep: every (engine, k, n, tree) combination yields a
/// strictly stable k-ary matching.
class BindingStabilityTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, Gender, Index>> {
};

TEST_P(BindingStabilityTest, Theorem2StableAndTheorem3Bounded) {
  const auto [seed, k, n] = GetParam();
  Rng rng(seed);
  const auto inst = gen::uniform(k, n, rng);
  const auto tree = prufer::random_tree(k, rng);
  const auto result = iterative_binding(inst, tree);
  ASSERT_TRUE(result.has_matching());
  // Theorem 3 (also enforced as a postcondition inside the call).
  EXPECT_LE(result.total_proposals,
            static_cast<std::int64_t>(k - 1) * n * n);
  // Theorem 2 via exact search (sizes kept small enough).
  EXPECT_FALSE(analysis::find_blocking_family(inst, result.matching())
                   .has_value())
      << "k=" << k << " n=" << n << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BindingStabilityTest,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u, 5u),
                       ::testing::Values(Gender{3}, Gender{4}, Gender{5}),
                       ::testing::Values(Index{2}, Index{3}, Index{5})));

TEST(IterativeBinding, AllTreesStableOnSmallInstances) {
  // Exhaust all k^(k-2) binding trees for k = 4, n = 3: every one must give a
  // strictly stable matching (Theorem 2 holds per tree, §IV.B notes the
  // matchings differ).
  Rng rng(220);
  const auto inst = gen::uniform(4, 3, rng);
  std::int64_t trees = 0;
  prufer::enumerate_trees(4, [&](const BindingStructure& tree) {
    const auto result = iterative_binding(inst, tree);
    EXPECT_FALSE(
        analysis::find_blocking_family(inst, result.matching()).has_value());
    ++trees;
  });
  EXPECT_EQ(trees, 16);
}

TEST(IterativeBinding, EnginesProduceIdenticalMatchings) {
  Rng rng(230);
  const auto inst = gen::uniform(4, 8, rng);
  const auto tree = prufer::random_tree(4, rng);
  const auto queue = iterative_binding(inst, tree, {GsEngine::queue, nullptr});
  const auto rounds = iterative_binding(inst, tree, {GsEngine::rounds, nullptr});
  ThreadPool pool(3);
  const auto parallel =
      iterative_binding(inst, tree, {GsEngine::parallel, &pool});
  EXPECT_EQ(queue.matching(), rounds.matching());
  EXPECT_EQ(queue.matching(), parallel.matching());
  EXPECT_EQ(queue.total_proposals, rounds.total_proposals);
}

TEST(IterativeBinding, ParallelEngineRequiresPool) {
  Rng rng(231);
  const auto inst = gen::uniform(3, 2, rng);
  EXPECT_THROW(
      iterative_binding(inst, trees::path(3), {GsEngine::parallel, nullptr}),
      ContractViolation);
}

TEST(IterativeBinding, StableMatchingsExistForAllSmallSizes) {
  // Cross-check with the oracle: the binding result appears among the
  // oracle's stable matchings.
  Rng rng(240);
  for (int trial = 0; trial < 5; ++trial) {
    const auto inst = gen::uniform(3, 3, rng);
    const auto result = iterative_binding(inst, trees::path(3));
    const auto census = analysis::kary_census(inst);
    EXPECT_GE(census.stable_matchings, 1);
    EXPECT_FALSE(
        analysis::find_blocking_family(inst, result.matching()).has_value());
  }
}

TEST(Theorem4, CyclePreferencesCannotSupportThreeBindings) {
  // §IV.B witness: with the listed preferences it is impossible to perform
  // three binary bindings and keep them consistent/stable. The GS matchings
  // of the three edges disagree, so the cycle's equivalence classes collapse.
  const auto inst = gen::theorem4_cycle_prefs();
  BindingStructure cycle(3);
  cycle.add_edge({0, 1});
  cycle.add_edge({1, 2});
  cycle.add_edge({2, 0});
  const auto result = bind_structure(inst, cycle);
  EXPECT_FALSE(result.equivalence.consistent)
      << "the paper's cycle preferences should make three bindings collide";
}

TEST(Theorem4, FewerBindingsCauseInstability) {
  // With k-2 bindings some component is unbound; preferences exist that make
  // the index-assembled matching unstable. The Fig. 3 instance already
  // works: bind only M-W and leave U unbound.
  const auto inst = kstable::examples::fig3_instance();
  BindingStructure forest(3);
  forest.add_edge({0, 1});
  const auto result = bind_structure(inst, forest);
  ASSERT_TRUE(result.equivalence.consistent);
  // Index assembly joins (m, w) with u = (2, 0); but m prefers u' and u'
  // prefers m, while... verify instability via exact search.
  const auto witness =
      analysis::find_blocking_family(inst, *result.equivalence.matching);
  // Either assembly is blocked, or (rarely) the arbitrary join happened to be
  // stable. For this specific instance the assembly pairs (m,w) with u and
  // (m',w') with u', which IS the stable matching — so use the crosswise
  // instance instead.
  (void)witness;
  // Crosswise variant: make the unbound gender's index-join wrong.
  KPartiteInstance bad = inst;
  // Flip u/u' preferences of both w and w' so W-U mutual first choices cross:
  bad.set_pref_list({1, 0}, 2, std::vector<Index>{1, 0});  // w : u' > u
  bad.set_pref_list({1, 1}, 2, std::vector<Index>{0, 1});  // w': u > u'
  bad.set_pref_list({2, 0}, 1, std::vector<Index>{1, 0});  // u : w' > w
  bad.set_pref_list({2, 1}, 1, std::vector<Index>{0, 1});  // u': w > w'
  bad.validate();
  const auto bad_result = bind_structure(bad, forest);
  ASSERT_TRUE(bad_result.equivalence.consistent);
  const auto bad_witness =
      analysis::find_blocking_family(bad, *bad_result.equivalence.matching);
  EXPECT_TRUE(bad_witness.has_value())
      << "unbound component should admit a blocking family";
}

TEST(Theorem4, RandomInstancesFewBindingsSometimesUnstable) {
  // Statistical contrast: across random k=4 instances, a 1-edge forest must
  // produce at least one blocked assembly while the spanning tree never does.
  // (Strict blocking families need many simultaneous preference agreements,
  // so the per-instance hit rate is modest — Theorem 4's "fewer bindings
  // cause instability" is an existence claim, covered deterministically
  // above; here we only check the rates separate.)
  Rng rng(250);
  int forest_unstable = 0;
  int tree_unstable = 0;
  const int trials = 20;
  for (int trial = 0; trial < trials; ++trial) {
    const auto inst = gen::uniform(4, 8, rng);
    BindingStructure forest(4);
    forest.add_edge({0, 1});
    const auto result = bind_structure(inst, forest);
    ASSERT_TRUE(result.equivalence.consistent);
    forest_unstable +=
        analysis::find_blocking_family_pairs(inst, *result.equivalence.matching,
                                             analysis::BlockingMode::strict)
            .has_value();
    const auto full = iterative_binding(inst, trees::path(4));
    tree_unstable +=
        analysis::find_blocking_family_pairs(inst, full.matching(),
                                             analysis::BlockingMode::strict)
            .has_value();
  }
  EXPECT_GT(forest_unstable, 0);
  EXPECT_EQ(tree_unstable, 0);
  EXPECT_GT(forest_unstable, tree_unstable);
}

TEST(GreedySpanningTree, ConsumesCandidatesInOrder) {
  const std::vector<GenderEdge> candidates{
      {0, 1}, {1, 0}, {1, 2}, {0, 2}, {2, 3}};
  // Second candidate (1,0) would duplicate/cycle and must be skipped.
  const auto tree = greedy_spanning_tree(4, candidates);
  EXPECT_TRUE(tree.is_spanning_tree());
  ASSERT_EQ(tree.edges().size(), 3U);
  EXPECT_EQ(tree.edges()[0].a, 0);
  EXPECT_EQ(tree.edges()[1].b, 2);
}

TEST(GreedySpanningTree, ThrowsWhenCandidatesCannotSpan) {
  const std::vector<GenderEdge> candidates{{0, 1}};
  EXPECT_THROW(greedy_spanning_tree(3, candidates), ContractViolation);
}

TEST(Strengthen, GloballyAlignedScoresAcceptEveryExtraBinding) {
  // popularity(noise=0) ranks everyone by one global score per member, so
  // every pairwise GS matching is score-aligned and all C(k,2) - (k-1) extra
  // edges stay consistent. (Plain master_list does NOT have this property:
  // its shared orders are independent per gender pair.)
  Rng rng(270);
  const Gender k = 5;
  const auto inst = gen::popularity(k, 6, rng, 0.0);
  const auto result = strengthen_bindings(inst, trees::path(k));
  EXPECT_EQ(result.extra_accepted, (k * (k - 1) / 2) - (k - 1));
  EXPECT_EQ(result.extra_rejected, 0);
  EXPECT_TRUE(result.binding.equivalence.consistent);
}

TEST(Strengthen, UniformInstancesRejectMostExtraBindings) {
  Rng rng(271);
  int total_accepted = 0;
  int total_rejected = 0;
  for (int trial = 0; trial < 10; ++trial) {
    const auto inst = gen::uniform(4, 8, rng);
    const auto result = strengthen_bindings(inst, trees::path(4));
    total_accepted += result.extra_accepted;
    total_rejected += result.extra_rejected;
    // Whatever was accepted, the result stays a consistent matching.
    ASSERT_TRUE(result.binding.equivalence.consistent);
    EXPECT_FALSE(analysis::find_blocking_family_pairs(
                     inst, *result.binding.equivalence.matching,
                     analysis::BlockingMode::strict)
                     .has_value());
  }
  EXPECT_GT(total_rejected, total_accepted);
}

TEST(Strengthen, PaperCyclePreferencesRejectTheClosingEdge) {
  // §IV.B: the cycle witness preferences cannot support a third binding.
  const auto inst = gen::theorem4_cycle_prefs();
  BindingStructure base(3);
  base.add_edge({0, 1});
  base.add_edge({1, 2});
  const auto result = strengthen_bindings(inst, base);
  EXPECT_EQ(result.extra_accepted, 0);
  EXPECT_EQ(result.extra_rejected, 1);
  EXPECT_TRUE(result.structure.is_spanning_tree());
}

TEST(Strengthen, RejectsCyclicBase) {
  Rng rng(272);
  const auto inst = gen::uniform(3, 2, rng);
  BindingStructure cyclic(3);
  cyclic.add_edge({0, 1});
  cyclic.add_edge({1, 2});
  cyclic.add_edge({2, 0});
  EXPECT_THROW(strengthen_bindings(inst, cyclic), ContractViolation);
}

TEST(BindingResult, ProposalAccountingMatchesEdges) {
  Rng rng(260);
  const auto inst = gen::uniform(4, 6, rng);
  const auto tree = trees::star(4, 0);
  const auto result = iterative_binding(inst, tree);
  std::int64_t sum = 0;
  for (const auto& r : result.edge_results) sum += r.proposals;
  EXPECT_EQ(sum, result.total_proposals);
  EXPECT_EQ(result.edge_results.size(), 3U);
}

}  // namespace
}  // namespace kstable::core
