#!/usr/bin/env bash
# Reproduces everything: build, full test suite, every experiment E1..E19.
# Outputs land in test_output.txt and bench_output.txt at the repo root,
# plus one machine-readable BENCH_<exp>.json per benchmark binary (google
# benchmark's JSON reporter; the human console report is unaffected).
#
# Fail-fast discipline: results are written to *.partial files and only
# renamed into place after the producing step succeeds, so an aborted run can
# never leave a truncated file that looks like a complete result.
set -euo pipefail
cd "$(dirname "$0")/.."

on_error() {
  echo "reproduce.sh: FAILED at line $1 — partial outputs left as *.partial" >&2
}
trap 'on_error $LINENO' ERR

# Release explicitly: the bench binaries refuse --benchmark_out from any
# other build type (BENCH_*.json timings must be comparable across runs).
cmake -B build -G Ninja -DCMAKE_BUILD_TYPE=Release
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt.partial
mv test_output.txt.partial test_output.txt

# Each benchmark binary must succeed; a crashing or aborted experiment kills
# the run instead of silently truncating bench_output.txt. Every binary also
# writes its registered-benchmark results (counters included) to
# BENCH_<exp>.json via --benchmark_out, e.g. bench_e15_tree_ablation ->
# BENCH_e15.json, under the same .partial-then-rename discipline.
: > bench_output.txt.partial
for b in build/bench/bench_*; do
  # The glob also matches stray non-binaries (CMake artifacts, *.json output
  # from a previous in-tree run) and stays literal when nothing matches —
  # only run regular executable files.
  [ -f "$b" ] && [ -x "$b" ] || continue
  exp="$(basename "$b" | sed -E 's/^bench_(e[0-9]+).*/\1/')"
  json="BENCH_${exp}.json"
  echo "== $b ==" | tee -a bench_output.txt.partial
  "$b" --benchmark_out="${json}.partial" --benchmark_out_format=json \
    2>&1 | tee -a bench_output.txt.partial
  mv "${json}.partial" "$json"
done
mv bench_output.txt.partial bench_output.txt

# Regression gates: each fresh run must not regress the committed
# baseline's deterministic counters or its pinned within-file time ratios
# (machine-portable; see scripts/compare_bench.py --help for the classes).
# E18: sweep totals (trees enumerated, scheduler chunk) are deterministic;
# steals/fresh_gs_runs are scheduling-dependent and not gated.
python3 scripts/compare_bench.py \
  --baseline bench/baselines/BENCH_E18.json --fresh BENCH_e18.json \
  --exact-counter trees --exact-counter chunk
# E19: exact proposal counters plus prefetch/queue engine ratios.
python3 scripts/compare_bench.py \
  --baseline bench/baselines/BENCH_E19.json --fresh BENCH_e19.json \
  --ratio bm_gs_prefetch_narrow bm_gs_queue_narrow \
  --ratio bm_gs_prefetch_wide bm_gs_queue_wide
# E20: warm must stay cheaper than cold by the frozen-scenario counters.
python3 scripts/compare_bench.py \
  --baseline bench/baselines/BENCH_E20.json --fresh BENCH_e20.json \
  --exact-counter warm_proposals --exact-counter cold_proposals
# E21: implicit-backend proposals are deterministic (the explicit twin
# solves the materialized same instances, so its counters match row for
# row), and the implicit/explicit queue ratio pins the generator overhead.
python3 scripts/compare_bench.py \
  --baseline bench/baselines/BENCH_E21.json --fresh BENCH_e21.json \
  --ratio bm_implicit_queue bm_explicit_queue \
  --ratio bm_implicit_prefetch bm_implicit_queue

echo "reproduce.sh: all experiments completed"
