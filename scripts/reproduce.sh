#!/usr/bin/env bash
# Reproduces everything: build, full test suite, every experiment E1..E16.
# Outputs land in test_output.txt and bench_output.txt at the repo root.
#
# Fail-fast discipline: results are written to *.partial files and only
# renamed into place after the producing step succeeds, so an aborted run can
# never leave a truncated file that looks like a complete result.
set -euo pipefail
cd "$(dirname "$0")/.."

on_error() {
  echo "reproduce.sh: FAILED at line $1 — partial outputs left as *.partial" >&2
}
trap 'on_error $LINENO' ERR

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt.partial
mv test_output.txt.partial test_output.txt

# Each benchmark binary must succeed; a crashing or aborted experiment kills
# the run instead of silently truncating bench_output.txt.
: > bench_output.txt.partial
for b in build/bench/bench_*; do
  echo "== $b ==" | tee -a bench_output.txt.partial
  "$b" 2>&1 | tee -a bench_output.txt.partial
done
mv bench_output.txt.partial bench_output.txt
echo "reproduce.sh: all experiments completed"
