#!/usr/bin/env bash
# Reproduces everything: build, full test suite, every experiment E1..E15.
# Outputs land in test_output.txt and bench_output.txt at the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build 2>&1 | tee test_output.txt
for b in build/bench/bench_*; do "$b"; done 2>&1 | tee bench_output.txt
