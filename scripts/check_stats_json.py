#!/usr/bin/env python3
"""Validates a kmatch --stats-json file against the kstable.stats.v1 schema.

Usage:
    check_stats_json.py <stats.json> [--expect-proposals N] [--solved]

Checks (stdlib only, no third-party deps):
  * the file is one well-formed JSON object with schema "kstable.stats.v1";
  * "telemetry" is null or an object with the full SolveTelemetry key set and
    correctly typed values;
  * "metrics" is an object mapping dotted names to ints (counters/gauges) or
    {"count","sum","buckets"} histogram objects;
  * with --solved: telemetry is present, ok, with positive wall_ms/proposals;
  * with --expect-proposals N: telemetry.proposals == N (cross-checked against
    the solver's stdout by the CTest wrapper);
  * with --serve: the serve.* instrument set is present and the accounting
    invariant holds — every received request reached exactly one terminal
    outcome (received == completed + degraded + shed + timeout + error).

Exits 0 when valid, 1 with a diagnostic on stderr otherwise.
"""
import argparse
import json
import sys

TELEMETRY_KEYS = {
    "engine": str,
    "genders": int,
    "size": int,
    "wall_ms": (int, float),
    "phases": dict,
    "status": dict,
    "proposals": int,
    "executed_proposals": int,
    "cache_hits": int,
    "cache_misses": int,
    "rounds": int,
    "attempts": int,
    "rung": int,
    "deadline_margin_ms": (int, float),
}

STATUS_KEYS = {"outcome": str, "abort_reason": str, "detail": str}

SERVE_OUTCOMES = (
    "serve.requests.completed",
    "serve.requests.degraded",
    "serve.requests.shed",
    "serve.requests.timeout",
    "serve.requests.error",
)

SERVE_REQUIRED = ("serve.requests.received", "serve.responses.sent") \
    + SERVE_OUTCOMES


def fail(message):
    print(f"check_stats_json: {message}", file=sys.stderr)
    sys.exit(1)


def check_telemetry(telemetry):
    for key, kind in TELEMETRY_KEYS.items():
        if key not in telemetry:
            fail(f"telemetry missing key '{key}'")
        if not isinstance(telemetry[key], kind):
            fail(f"telemetry['{key}'] has type {type(telemetry[key]).__name__}")
    for key, kind in STATUS_KEYS.items():
        if key not in telemetry["status"]:
            fail(f"telemetry.status missing key '{key}'")
        if not isinstance(telemetry["status"][key], kind):
            fail(f"telemetry.status['{key}'] is not a {kind.__name__}")
    if telemetry["status"]["outcome"] not in ("ok", "aborted", "no_stable"):
        fail(f"unknown outcome '{telemetry['status']['outcome']}'")
    for name, ms in telemetry["phases"].items():
        if not isinstance(name, str) or not isinstance(ms, (int, float)):
            fail(f"phase '{name}' is not a string->number entry")


def check_metrics(metrics):
    for name, value in metrics.items():
        if not isinstance(name, str) or not name:
            fail("metric with empty/non-string name")
        if isinstance(value, int):
            continue
        if isinstance(value, dict):
            for key in ("count", "sum", "buckets"):
                if key not in value:
                    fail(f"histogram '{name}' missing '{key}'")
            if not isinstance(value["buckets"], list) or not all(
                isinstance(b, int) for b in value["buckets"]
            ):
                fail(f"histogram '{name}' has non-int buckets")
            continue
        fail(f"metric '{name}' is neither int nor histogram object")


def check_serve(metrics):
    for name in SERVE_REQUIRED:
        if name not in metrics:
            fail(f"--serve: metrics missing '{name}'")
        if not isinstance(metrics[name], int):
            fail(f"--serve: '{name}' is not an int counter")
    received = metrics["serve.requests.received"]
    if received <= 0:
        fail("--serve: no requests were received")
    settled = sum(metrics[name] for name in SERVE_OUTCOMES)
    if received != settled:
        detail = ", ".join(f"{n.split('.')[-1]}={metrics[n]}"
                           for n in SERVE_OUTCOMES)
        fail(f"--serve: accounting broken — received={received} but "
             f"outcomes sum to {settled} ({detail})")


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("stats_file")
    parser.add_argument("--expect-proposals", type=int, default=None)
    parser.add_argument("--solved", action="store_true",
                        help="require an ok telemetry record with nonzero "
                             "timing and proposals")
    parser.add_argument("--serve", action="store_true",
                        help="require the serve.* instrument set and the "
                             "request-accounting invariant")
    args = parser.parse_args()

    try:
        with open(args.stats_file, encoding="utf-8") as fh:
            stats = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        fail(f"cannot parse '{args.stats_file}': {exc}")

    if not isinstance(stats, dict):
        fail("top-level value is not an object")
    if stats.get("schema") != "kstable.stats.v1":
        fail(f"unexpected schema tag {stats.get('schema')!r}")
    if "telemetry" not in stats or "metrics" not in stats:
        fail("missing 'telemetry' or 'metrics' key")

    telemetry = stats["telemetry"]
    if telemetry is not None:
        if not isinstance(telemetry, dict):
            fail("'telemetry' is neither null nor an object")
        check_telemetry(telemetry)
    if not isinstance(stats["metrics"], dict):
        fail("'metrics' is not an object")
    check_metrics(stats["metrics"])

    if args.solved:
        if telemetry is None:
            fail("--solved: telemetry is null")
        if telemetry["status"]["outcome"] != "ok":
            fail(f"--solved: outcome is {telemetry['status']['outcome']!r}")
        if telemetry["wall_ms"] <= 0:
            fail("--solved: wall_ms is not positive")
        if telemetry["proposals"] <= 0:
            fail("--solved: proposals is not positive")
    if args.expect_proposals is not None:
        if telemetry is None:
            fail("--expect-proposals: telemetry is null")
        if telemetry["proposals"] != args.expect_proposals:
            fail(f"proposals {telemetry['proposals']} != "
                 f"expected {args.expect_proposals}")
    if args.serve:
        check_serve(stats["metrics"])

    print(f"check_stats_json: OK ({args.stats_file})")


if __name__ == "__main__":
    main()
