#!/usr/bin/env bash
# End-to-end smoke of the long-lived service: `kmatch serve` driven by the
# bundled `kmatch ping` client (run by CTest as `serve_smoke` and by the
# serve-smoke CI job).
#
# Usage: serve_smoke.sh <examples-bin-dir> <repo-root> <work-dir>
#
# Legs:
#   1. Chaos leg — server under seeded fault injection on every service
#      point (accept, frame-parse, enqueue, respond, stall) with offered
#      load above capacity; every request must still be acknowledged
#      (lost 0, inconsistent 0), the metrics scrape must satisfy the
#      serve.* accounting invariant (check_stats_json.py --serve), and
#      SIGTERM must drain cleanly with exit 0.
#   2. Kill-and-restart leg — SIGKILL the server mid-workload, restart it
#      on the same port; the client must reconnect, resend every
#      unacknowledged request, and finish with zero lost and zero
#      inconsistent responses.
#
# Requires a build with fault injection enabled (the default); a
# -DKSTABLE_FAULT_INJECTION=OFF binary rejects --chaos with exit 2.
set -u

BIN_DIR="$1"
REPO_ROOT="$2"
WORK_DIR="$3"
KMATCH="$BIN_DIR/kmatch_cli"
mkdir -p "$WORK_DIR"

failures=0
pids=()

note_failure() {
  echo "FAIL: $1" >&2
  failures=$((failures + 1))
}

cleanup() {
  for pid in "${pids[@]:-}"; do
    kill -9 "$pid" 2>/dev/null || true
  done
}
trap cleanup EXIT

# Wait until the server log announces its (possibly ephemeral) port, then
# print the port number. The CLI installs its signal handlers *before*
# printing this line, so a server that has printed it is safe to signal.
wait_for_port() {
  local log="$1" i port
  for i in $(seq 1 100); do
    port="$(sed -n 's/^listening on port \([0-9][0-9]*\)$/\1/p' "$log")"
    if [ -n "$port" ]; then
      echo "$port"
      return 0
    fi
    sleep 0.1
  done
  return 1
}

# ping_field <ping-stdout-file> <field-name> — extract a counter from the
# "ping: ... lost 0, inconsistent 0" summary line.
ping_field() {
  sed -n "s/.*[ (]$2 \([0-9][0-9]*\).*/\1/p" "$1"
}

# --- leg 1: chaos + overload + metrics scrape + clean drain -----------------
S1_OUT="$WORK_DIR/serve1.out"
S1_ERR="$WORK_DIR/serve1.err"
"$KMATCH" serve --port=0 --workers=2 --queue-depth=4 \
  --chaos=all --chaos-prob=0.03 --chaos-seed=7 --chaos-stall-ms=5 \
  >"$S1_OUT" 2>"$S1_ERR" &
S1=$!
pids+=("$S1")

if ! PORT1="$(wait_for_port "$S1_OUT")"; then
  note_failure "chaos server never announced its port ($(cat "$S1_ERR"))"
else
  PING1="$WORK_DIR/ping1.out"
  STATS1="$WORK_DIR/serve1.stats.json"
  # window 16 against 2 workers + queue 4: offered load beyond capacity, so
  # the shed/backoff path is exercised for real.
  if ! "$KMATCH" ping --port="$PORT1" --requests=300 --window=16 --seed=42 \
      --metrics-out="$STATS1" >"$PING1"; then
    note_failure "chaos-leg ping lost or got inconsistent responses"
    cat "$PING1" >&2 || true
  else
    echo "ok: chaos leg acknowledged all requests ($(cat "$PING1"))"
  fi
  if python3 "$REPO_ROOT/scripts/check_stats_json.py" "$STATS1" --serve; then
    echo "ok: metrics scrape satisfies the serve accounting invariant"
  else
    note_failure "metrics scrape failed --serve validation"
  fi
  kill -TERM "$S1" 2>/dev/null
  wait "$S1"
  rc=$?
  if [ "$rc" -ne 0 ]; then
    note_failure "chaos server drain exited $rc, expected 0 ($(cat "$S1_ERR"))"
  elif ! grep -q "drain clean" "$S1_ERR"; then
    note_failure "chaos server did not report a clean drain"
  else
    echo "ok: SIGTERM drained the chaos server cleanly"
  fi
fi

# --- leg 2: SIGKILL mid-workload, restart on the same port ------------------
S2_OUT="$WORK_DIR/serve2a.out"
"$KMATCH" serve --port=0 --workers=2 --queue-depth=8 \
  >"$S2_OUT" 2>"$WORK_DIR/serve2a.err" &
S2A=$!
pids+=("$S2A")

if ! PORT2="$(wait_for_port "$S2_OUT")"; then
  note_failure "restart-leg server never announced its port"
else
  PING2="$WORK_DIR/ping2.out"
  # Enough requests that the workload is still in flight when the SIGKILL
  # lands ~0.3s in (a plain 2000-request run finishes in ~0.7s; 5000 keeps
  # headroom on fast machines); the client's reconnect window (10s) covers
  # the restart.
  "$KMATCH" ping --port="$PORT2" --requests=5000 --window=16 --seed=9 \
    >"$PING2" &
  PING2_PID=$!
  pids+=("$PING2_PID")
  sleep 0.3
  kill -9 "$S2A" 2>/dev/null
  wait "$S2A" 2>/dev/null

  S2B_ERR="$WORK_DIR/serve2b.err"
  "$KMATCH" serve --port="$PORT2" --workers=2 --queue-depth=8 \
    >"$WORK_DIR/serve2b.out" 2>"$S2B_ERR" &
  S2B=$!
  pids+=("$S2B")

  if ! wait "$PING2_PID"; then
    note_failure "client lost responses across the kill/restart"
    cat "$PING2" >&2 || true
  else
    lost="$(ping_field "$PING2" lost)"
    inconsistent="$(ping_field "$PING2" inconsistent)"
    reconnects="$(ping_field "$PING2" reconnects)"
    if [ "${lost:-1}" != "0" ] || [ "${inconsistent:-1}" != "0" ]; then
      note_failure "kill/restart leg: lost=$lost inconsistent=$inconsistent"
    elif [ "${reconnects:-0}" = "0" ]; then
      # The workload finished before the kill landed: the leg proved
      # nothing. Treat as failure so the timing stays honest.
      note_failure "kill/restart leg never reconnected (kill landed too late)"
    else
      echo "ok: kill/restart leg ($(cat "$PING2"))"
    fi
  fi
  kill -TERM "$S2B" 2>/dev/null
  if wait "$S2B"; then
    echo "ok: restarted server drained cleanly"
  else
    note_failure "restarted server drain failed ($(cat "$S2B_ERR"))"
  fi
fi

if [ "$failures" -ne 0 ]; then
  echo "serve_smoke: $failures failure(s)" >&2
  exit 1
fi
echo "serve_smoke: all checks passed"
