#!/usr/bin/env python3
"""Compare a fresh BENCH_*.json against the last committed baseline run.

Guards the perf-trajectory gate (ROADMAP.md): a PR that regresses the pinned
metrics of a committed benchmark run fails CI instead of silently landing.

Three check classes, strictest first:

  1. exact counters   — per-benchmark google-benchmark counters that are
                        deterministic (proposal counts): must match the
                        baseline exactly. Machine-independent.
  2. ratio contracts  — WITHIN-file time ratios between an engine pair
                        (e.g. prefetch/queue at the same n), compared across
                        files with a tolerance. Ratios transfer between
                        machines, so this is the cross-runner regression
                        signal: if prefetch used to beat queue by 1.8x and a
                        change makes it slower than queue, the gate trips.
  3. absolute timing  — per-benchmark real_time vs the baseline, tolerance-
                        gated. Only meaningful when baseline and fresh run
                        came from the same machine; off by default, enabled
                        with --check-absolute (scripts/reproduce.sh runs).

Usage:
  compare_bench.py --baseline bench/baselines/BENCH_E19.json \
      --fresh BENCH_e19.json \
      --ratio bm_gs_prefetch_narrow bm_gs_queue_narrow \
      --ratio bm_gs_prefetch_wide bm_gs_queue_wide \
      [--tolerance 0.10] [--exact-counter proposals] [--check-absolute]

Exit status: 0 = no regression, 1 = regression found, 2 = usage/data error.
"""

import argparse
import json
import sys


def load_benchmarks(path):
    """(name -> benchmark row, pref backend); aggregate rows skipped.

    The preference backend ("explicit" tables vs "implicit" generator) is
    stamped into the JSON context by bench_common.hpp. Files predating the
    stamp default to "explicit" — every benchmark then ran on tables.
    """
    try:
        with open(path, encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"compare_bench: cannot read {path}: {exc}", file=sys.stderr)
        sys.exit(2)
    rows = {}
    for row in data.get("benchmarks", []):
        if row.get("run_type") == "aggregate":
            continue
        rows[row["name"]] = row
    if not rows:
        print(f"compare_bench: {path} contains no benchmark rows",
              file=sys.stderr)
        sys.exit(2)
    backend = data.get("context", {}).get("kstable.pref_backend", "explicit")
    return rows, backend


def check_exact_counters(base, fresh, counters, failures):
    checked = 0
    for name, brow in sorted(base.items()):
        frow = fresh.get(name)
        if frow is None:
            continue  # coverage differences are reported by check_coverage
        for counter in counters:
            if counter not in brow:
                continue
            checked += 1
            bval, fval = brow[counter], frow.get(counter)
            if fval != bval:
                failures.append(
                    f"{name}: counter '{counter}' changed "
                    f"{bval} -> {fval} (deterministic metric; any drift "
                    f"is a semantic change, not noise)")
    return checked


def real_time_of(row, name, path):
    """Validated real_time: present and positive, or a data error (exit 2).

    A truncated or hand-edited JSON used to surface as KeyError /
    ZeroDivisionError — a traceback and exit 1, indistinguishable from a real
    regression in CI. Bad data is a usage error, not a perf signal.
    """
    value = row.get("real_time")
    if not isinstance(value, (int, float)) or isinstance(value, bool) \
            or value <= 0.0:
        print(f"compare_bench: {path}: benchmark '{name}' has invalid "
              f"real_time {value!r} (expected a positive number) — "
              f"truncated or corrupt benchmark output?", file=sys.stderr)
        sys.exit(2)
    return value


def ratio_for(rows, path, numerator, denominator):
    """suffix -> time ratio for every '<numerator>/<suffix>' pair present."""
    out = {}
    prefix_n = numerator + "/"
    for name, row in rows.items():
        if not name.startswith(prefix_n):
            continue
        suffix = name[len(prefix_n):]
        denom_name = f"{denominator}/{suffix}"
        denom = rows.get(denom_name)
        if denom is None:
            continue
        out[suffix] = (real_time_of(row, name, path) /
                       real_time_of(denom, denom_name, path))
    return out


def check_ratio(base, base_path, fresh, fresh_path, numerator, denominator,
                tolerance, failures):
    base_ratios = ratio_for(base, base_path, numerator, denominator)
    fresh_ratios = ratio_for(fresh, fresh_path, numerator, denominator)
    checked = 0
    for suffix, base_ratio in sorted(base_ratios.items()):
        fresh_ratio = fresh_ratios.get(suffix)
        if fresh_ratio is None:
            continue
        checked += 1
        if fresh_ratio > base_ratio * (1.0 + tolerance):
            failures.append(
                f"{numerator}/{suffix} vs {denominator}/{suffix}: time ratio "
                f"regressed {base_ratio:.3f} -> {fresh_ratio:.3f} "
                f"(>{tolerance:.0%} above the committed baseline)")
    if checked == 0:
        failures.append(
            f"ratio contract {numerator}/{denominator}: no comparable rows "
            f"in both runs (benchmark renamed or sweep range changed?)")
    return checked


def check_absolute(base, base_path, fresh, fresh_path, tolerance, failures):
    checked = 0
    for name, brow in sorted(base.items()):
        frow = fresh.get(name)
        if frow is None:
            continue
        checked += 1
        base_time = real_time_of(brow, name, base_path)
        fresh_time = real_time_of(frow, name, fresh_path)
        if fresh_time > base_time * (1.0 + tolerance):
            failures.append(
                f"{name}: real_time regressed {base_time:.1f} -> "
                f"{fresh_time:.1f} {brow.get('time_unit', 'ns')} "
                f"(>{tolerance:.0%})")
    return checked


def check_coverage(base, fresh, failures):
    missing = sorted(set(base) - set(fresh))
    if missing:
        failures.append(
            "fresh run is missing baseline benchmarks (silent coverage "
            "loss): " + ", ".join(missing[:8]) +
            ("..." if len(missing) > 8 else ""))
    # Fresh-only names are a failure too: a benchmark added without updating
    # the committed baseline runs in CI but is never gated — exactly the
    # silent pass this script exists to prevent.
    extra = sorted(set(fresh) - set(base))
    if extra:
        failures.append(
            "fresh run has benchmarks absent from the baseline (update the "
            "committed baseline so they are gated): " + ", ".join(extra[:8]) +
            ("..." if len(extra) > 8 else ""))


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True,
                        help="committed BENCH_*.json to compare against")
    parser.add_argument("--fresh", required=True,
                        help="freshly produced BENCH_*.json")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="allowed relative regression (default 0.10)")
    parser.add_argument("--ratio", nargs=2, action="append", default=[],
                        metavar=("NUMERATOR", "DENOMINATOR"),
                        help="benchmark-name pair whose within-run time "
                             "ratio is pinned (repeatable)")
    parser.add_argument("--exact-counter", action="append", default=None,
                        metavar="NAME",
                        help="per-benchmark counter that must match exactly "
                             "(default: proposals)")
    parser.add_argument("--check-absolute", action="store_true",
                        help="also gate absolute real_time (same-machine "
                             "baselines only)")
    args = parser.parse_args()
    counters = args.exact_counter or ["proposals"]

    base, base_backend = load_benchmarks(args.baseline)
    fresh, fresh_backend = load_benchmarks(args.fresh)
    if base_backend != fresh_backend:
        # Data error, not a regression: an explicit-tables baseline says
        # nothing about implicit-generator solves (and vice versa), so a
        # comparison across backends would gate noise.
        print(f"compare_bench: preference backend mismatch: baseline "
              f"{args.baseline} is '{base_backend}' but fresh {args.fresh} "
              f"is '{fresh_backend}' — these runs are not comparable",
              file=sys.stderr)
        sys.exit(2)

    failures = []
    check_coverage(base, fresh, failures)
    n_counters = check_exact_counters(base, fresh, counters, failures)
    n_ratios = 0
    for numerator, denominator in args.ratio:
        n_ratios += check_ratio(base, args.baseline, fresh, args.fresh,
                                numerator, denominator, args.tolerance,
                                failures)
    n_abs = 0
    if args.check_absolute:
        n_abs = check_absolute(base, args.baseline, fresh, args.fresh,
                               args.tolerance, failures)

    print(f"compare_bench: {args.fresh} vs {args.baseline}: "
          f"{n_counters} exact-counter, {n_ratios} ratio, "
          f"{n_abs} absolute checks")
    if failures:
        for failure in failures:
            print(f"  REGRESSION: {failure}")
        return 1
    print("  no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
