#!/usr/bin/env bash
# CLI regression tests for the checked-argument parsing and the --stats-json
# exporter (run by CTest as `cli_regression`).
#
# Usage: cli_regression_test.sh <examples-bin-dir> <repo-root> <work-dir>
#
# Covers:
#   * garbage/negative/overflowing numeric arguments exit 2 and print usage;
#   * bad global-flag values (--deadline-ms=abc, --max-proposals=-1) exit 2;
#   * the demo binaries reject garbage positional arguments the same way;
#   * a gen -> kary --stats-json round trip produces a schema-valid stats
#     file whose proposal count matches the solver's stdout;
#   * the `kmatch verify` exit-code contract: 0 on a clean differential
#     sweep, 4 (plus a loadable minimal-repro file) when a sabotaged engine
#     diverges, 2 on bad verify flags;
#   * the `kmatch serve` / `kmatch ping` exit-code contract: bad transport
#     flags exit 2, a clean stdio drain exits 0, a drain that cannot meet
#     its deadline exits 3, and `ping` without a reachable server exits 1.
set -u

BIN_DIR="$1"
REPO_ROOT="$2"
WORK_DIR="$3"
KMATCH="$BIN_DIR/kmatch_cli"
mkdir -p "$WORK_DIR"

failures=0

note_failure() {
  echo "FAIL: $1" >&2
  failures=$((failures + 1))
}

# expect_usage_error <description> -- <command...>
# The command must exit 2 and print a usage line to stderr.
expect_usage_error() {
  local description="$1"
  shift 2  # drop description and "--"
  local stderr_file="$WORK_DIR/stderr.txt"
  "$@" >/dev/null 2>"$stderr_file"
  local rc=$?
  if [ "$rc" -ne 2 ]; then
    note_failure "$description: exit $rc, expected 2"
    return
  fi
  if ! grep -qi "usage" "$stderr_file"; then
    note_failure "$description: no usage text on stderr"
    return
  fi
  echo "ok: $description"
}

# --- kmatch numeric-argument rejection -------------------------------------
expect_usage_error "gen rejects negative k" \
  -- "$KMATCH" gen -3 10 0 "$WORK_DIR/never.inst"
expect_usage_error "gen rejects k=1 (need k>=2)" \
  -- "$KMATCH" gen 1 10 0 "$WORK_DIR/never.inst"
expect_usage_error "gen rejects non-numeric k/n" \
  -- "$KMATCH" gen x y 0 "$WORK_DIR/never.inst"
expect_usage_error "gen rejects trailing junk" \
  -- "$KMATCH" gen 3 10x 0 "$WORK_DIR/never.inst"
expect_usage_error "gen rejects n=0" \
  -- "$KMATCH" gen 3 0 0 "$WORK_DIR/never.inst"
expect_usage_error "gen rejects out-of-range n" \
  -- "$KMATCH" gen 3 99999999999999999999 0 "$WORK_DIR/never.inst"
expect_usage_error "bad --deadline-ms value" \
  -- "$KMATCH" --deadline-ms=abc kary "$WORK_DIR/never.inst"
expect_usage_error "negative --max-proposals" \
  -- "$KMATCH" --max-proposals=-1 kary "$WORK_DIR/never.inst"
expect_usage_error "unknown flag" \
  -- "$KMATCH" --no-such-flag info "$WORK_DIR/never.inst"
expect_usage_error "non-numeric --sweep-threads" \
  -- "$KMATCH" --sweep-threads=abc kary "$WORK_DIR/never.inst"
expect_usage_error "zero --sweep-threads (need >= 1)" \
  -- "$KMATCH" --sweep-threads=0 kary "$WORK_DIR/never.inst"
expect_usage_error "negative --sweep-threads" \
  -- "$KMATCH" --sweep-threads=-4 kary "$WORK_DIR/never.inst"
expect_usage_error "coalitions rejects non-numeric group size" \
  -- "$KMATCH" coalitions "$WORK_DIR/never.inst" q
if [ -e "$WORK_DIR/never.inst" ]; then
  note_failure "a rejected gen still wrote its output file"
fi

# --- demo binaries reject garbage args -------------------------------------
expect_usage_error "society_kparent rejects k=x" \
  -- "$BIN_DIR/society_kparent" x
expect_usage_error "society_kparent rejects k=1" \
  -- "$BIN_DIR/society_kparent" 1 16 3
expect_usage_error "ant_colony rejects colonies=-2" \
  -- "$BIN_DIR/ant_colony" -2
expect_usage_error "coalition_formation rejects n=junk" \
  -- "$BIN_DIR/coalition_formation" junk
expect_usage_error "fair_matchmaking rejects n=0" \
  -- "$BIN_DIR/fair_matchmaking" 0

# --- stats-json round trip --------------------------------------------------
INST="$WORK_DIR/cli_reg.inst"
STATS="$WORK_DIR/cli_reg.stats.json"
PROM="$WORK_DIR/cli_reg.stats.prom"
STDOUT="$WORK_DIR/cli_reg.stdout"
if ! "$KMATCH" gen 3 8 5 "$INST" >/dev/null; then
  note_failure "gen with valid arguments failed"
elif ! "$KMATCH" --stats-json="$STATS" --stats-prom="$PROM" kary "$INST" \
    >"$STDOUT"; then
  note_failure "kary --stats-json failed"
else
  proposals="$(sed -n 's/^proposals: \([0-9]*\)$/\1/p' "$STDOUT")"
  if [ -z "$proposals" ]; then
    note_failure "could not read proposal count from kary stdout"
  elif python3 "$REPO_ROOT/scripts/check_stats_json.py" "$STATS" \
      --solved --expect-proposals "$proposals"; then
    echo "ok: stats JSON round trip (proposals=$proposals)"
  else
    note_failure "stats JSON failed schema/proposal validation"
  fi
  if grep -q "kstable_solve_proposals{engine=\"binding.queue\"} $proposals" \
      "$PROM"; then
    echo "ok: Prometheus export carries the solve telemetry"
  else
    note_failure "Prometheus stats file missing telemetry series"
  fi
  # Registry counters exist only when the library was built with metrics on
  # (the default); a -DKSTABLE_METRICS=OFF build exports an empty registry.
  if grep -q '"gs.queue.proposals"' "$STATS"; then
    if grep -q "kstable_gs_queue_proposals_total" "$PROM"; then
      echo "ok: Prometheus export carries the registry counters"
    else
      note_failure "registry counters in JSON but missing from Prometheus"
    fi
  else
    echo "ok: metrics registry compiled out (KSTABLE_METRICS=OFF build)"
  fi
fi

# --- kary best: parallel sweep matches the sequential sweep -----------------
SEQ_OUT="$WORK_DIR/cli_reg.best_seq"
PAR_OUT="$WORK_DIR/cli_reg.best_par"
if ! "$KMATCH" kary "$INST" best >"$SEQ_OUT"; then
  note_failure "kary best (sequential) failed"
elif ! "$KMATCH" --sweep-threads=4 kary "$INST" best >"$PAR_OUT"; then
  note_failure "kary best --sweep-threads=4 failed"
else
  # Determinism contract: only the worker/steal telemetry line may differ.
  if [ "$(grep -v '^swept ' "$SEQ_OUT")" = "$(grep -v '^swept ' "$PAR_OUT")" ] \
      && grep -q "^swept 3 trees" "$SEQ_OUT" \
      && grep -q "best tree index" "$SEQ_OUT"; then
    echo "ok: kary best parallel output identical to sequential"
  else
    note_failure "kary best parallel/sequential outputs differ"
  fi
fi

# --- kmatch verify exit-code contract ---------------------------------------
expect_usage_error "verify rejects unknown --shape" \
  -- "$KMATCH" verify --shape=pentapartite
expect_usage_error "verify rejects unknown --sabotage" \
  -- "$KMATCH" verify --sabotage=bitflip
expect_usage_error "verify rejects zero --seeds" \
  -- "$KMATCH" verify --seeds=0
expect_usage_error "verify rejects positional arguments" \
  -- "$KMATCH" verify extra

"$KMATCH" verify --seeds=10 --repro-dir="$WORK_DIR" \
  >"$WORK_DIR/verify_clean.out" 2>/dev/null
rc=$?
if [ "$rc" -ne 0 ]; then
  note_failure "clean verify sweep exited $rc, expected 0"
else
  echo "ok: clean verify sweep exits 0"
fi

"$KMATCH" verify --seeds=2 --shape=kpartite --sabotage=kary_swap \
  --repro-dir="$WORK_DIR" >"$WORK_DIR/verify_sab.out" 2>"$WORK_DIR/verify_sab.err"
rc=$?
REPRO="$WORK_DIR/kverify_repro_kpartite_1.kp"
if [ "$rc" -ne 4 ]; then
  note_failure "sabotaged verify sweep exited $rc, expected 4"
elif ! grep -q '"check":"binding.sweep.bitwise"' "$WORK_DIR/verify_sab.out"; then
  note_failure "sabotaged verify sweep printed no mismatch JSON"
elif [ ! -f "$REPRO" ]; then
  note_failure "sabotaged verify sweep wrote no minimal repro"
elif ! "$KMATCH" info "$REPRO" >/dev/null; then
  note_failure "minimal repro is not loadable by kmatch info"
else
  echo "ok: sabotaged verify exits 4 with a loadable minimal repro"
fi

# --- kmatch serve / ping exit-code contract ---------------------------------
expect_usage_error "serve needs --stdio or --port" \
  -- "$KMATCH" serve
expect_usage_error "serve rejects --stdio combined with --port" \
  -- "$KMATCH" serve --stdio --port=4242
expect_usage_error "serve rejects out-of-range --port" \
  -- "$KMATCH" serve --port=99999
expect_usage_error "serve rejects non-numeric --port" \
  -- "$KMATCH" serve --port=abc
expect_usage_error "serve rejects zero --workers" \
  -- "$KMATCH" serve --stdio --workers=0
expect_usage_error "serve rejects zero --queue-depth" \
  -- "$KMATCH" serve --stdio --queue-depth=0
expect_usage_error "serve rejects unknown --chaos point" \
  -- "$KMATCH" serve --stdio --chaos=meteor
expect_usage_error "ping needs --port" \
  -- "$KMATCH" ping
expect_usage_error "ping rejects out-of-range --port" \
  -- "$KMATCH" ping --port=99999
expect_usage_error "ping rejects zero --requests" \
  -- "$KMATCH" ping --port=4242 --requests=0

FRAMES="$WORK_DIR/serve_reg.frames"
if ! "$KMATCH" ping --emit="$FRAMES" --requests=3 --seed=5 >/dev/null; then
  note_failure "ping --emit failed to write a frame file"
else
  "$KMATCH" serve --stdio <"$FRAMES" >"$WORK_DIR/serve_reg.out" \
    2>"$WORK_DIR/serve_reg.err"
  rc=$?
  responses="$(grep -c '^kmatch/1 OK ' "$WORK_DIR/serve_reg.out")"
  if [ "$rc" -ne 0 ]; then
    note_failure "clean stdio drain exited $rc, expected 0"
  elif ! grep -q "drain clean" "$WORK_DIR/serve_reg.err"; then
    note_failure "clean stdio serve did not report a clean drain"
  elif [ "$responses" -ne 3 ]; then
    note_failure "stdio serve answered $responses/3 requests"
  else
    echo "ok: stdio serve answers every frame and drains with exit 0"
  fi

  # Drain-deadline breach: every solve wedges on a 2 s injected stall, the
  # drain deadline is 50 ms, and the 50 ms grace cannot outlast the stall —
  # the server must give up and report the breach via exit 3. Skipped on
  # -DKSTABLE_FAULT_INJECTION=OFF builds, where --chaos itself exits 2.
  "$KMATCH" serve --stdio --chaos=stall --chaos-prob=1 --chaos-stall-ms=2000 \
    --drain-deadline-ms=50 --drain-grace-ms=50 <"$FRAMES" \
    >/dev/null 2>"$WORK_DIR/serve_reg_stall.err"
  rc=$?
  if grep -q "fault injection compiled in" "$WORK_DIR/serve_reg_stall.err"; then
    echo "ok: drain-breach case skipped (fault injection compiled out)"
  elif [ "$rc" -ne 3 ]; then
    note_failure "wedged drain exited $rc, expected 3"
  elif ! grep -q "drain EXCEEDED" "$WORK_DIR/serve_reg_stall.err"; then
    note_failure "wedged drain did not report EXCEEDED"
  else
    echo "ok: drain-deadline breach exits 3"
  fi
fi

# A ping against a port nobody listens on must report the loss via exit 1
# (connect retries are bounded by --response-timeout-ms-scaled waits; keep
# the run tiny so the bounded retry window stays short).
KMATCH_PING_START=$(date +%s)
"$KMATCH" ping --port=1 --requests=1 --response-timeout-ms=100 \
  >"$WORK_DIR/ping_dead.out" 2>/dev/null
rc=$?
if [ "$rc" -ne 1 ]; then
  note_failure "ping against a dead port exited $rc, expected 1"
elif ! grep -q "lost 1" "$WORK_DIR/ping_dead.out"; then
  note_failure "ping against a dead port did not report the request lost"
else
  echo "ok: ping against a dead port exits 1 ($(( $(date +%s) - KMATCH_PING_START ))s)"
fi

if [ "$failures" -ne 0 ]; then
  echo "cli_regression_test: $failures failure(s)" >&2
  exit 1
fi
echo "cli_regression_test: all checks passed"
