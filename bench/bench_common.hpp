// Shared harness glue for the experiment benchmarks.
//
// Every bench binary first prints its paper-shaped report (the rows a figure
// or theorem in the paper corresponds to), then runs its google-benchmark
// microbenchmarks. EXPERIMENTS.md records the printed reports against the
// paper's claims.
//
// Each binary also attaches the process-wide kstable metrics registry
// (proposals, cache hits, ladder rungs, ... — docs/OBSERVABILITY.md) to the
// google-benchmark context, so a `--benchmark_out=BENCH_X.json` run carries
// the library's own counters alongside the timing rows. The snapshot is taken
// after the report phase, i.e. it covers the report's solves; benchmark
// iterations run afterwards and can be diffed against it with a second
// export.
#pragma once

#include <benchmark/benchmark.h>

#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>

#include "core/kstable.hpp"

namespace kstable::benchsupport {

/// CMAKE_BUILD_TYPE the binary was compiled under (stamped by
/// bench/CMakeLists.txt), or "unknown" for out-of-tree builds.
inline const char* build_type() {
#if defined(KSTABLE_BUILD_TYPE)
  return KSTABLE_BUILD_TYPE;
#else
  return "unknown";
#endif
}

/// True when the command line asks for a machine-readable result file.
inline bool wants_benchmark_out(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]).rfind("--benchmark_out=", 0) == 0) {
      return true;
    }
  }
  return false;
}

/// BENCH_*.json files feed EXPERIMENTS.md and cross-run comparisons, so a
/// file produced by an unoptimized build is actively misleading. Refuse to
/// emit one unless the binary was compiled as Release.
inline bool refuse_non_release_export(int argc, char** argv) {
  if (!wants_benchmark_out(argc, argv)) return false;
  if (std::string_view(build_type()) == "Release") return false;
  std::cerr << "refusing --benchmark_out: this binary was built as '"
            << build_type()
            << "', not Release — its timings are not comparable.\n"
               "Reconfigure with -DCMAKE_BUILD_TYPE=Release (what "
               "scripts/reproduce.sh does) or drop --benchmark_out.\n";
  return true;
}

/// Which preference backend the binary's benchmarks exercise, stamped into
/// the JSON context as "kstable.pref_backend". Defaults to "explicit";
/// benchmarks over generator-backed instances (bench_e21_implicit) call
/// set_pref_backend() before KSTABLE_BENCH_MAIN's context attach runs.
/// scripts/compare_bench.py refuses to compare two files whose backends
/// differ — an explicit-tables baseline says nothing about implicit solves.
inline const char*& pref_backend_label() {
  static const char* label = "explicit";
  return label;
}

inline void set_pref_backend(const char* label) {
  pref_backend_label() = label;
}

/// Adds every registered instrument as a "kstable.<name>" context entry
/// (counters/gauges as the value, histograms as "sum/count"), plus the
/// build type, CPU count, and preference backend any timing comparison
/// needs for context.
inline void attach_metrics_context() {
  benchmark::AddCustomContext("kstable.build_type", build_type());
  benchmark::AddCustomContext("kstable.pref_backend", pref_backend_label());
  benchmark::AddCustomContext(
      "kstable.cpu_count", std::to_string(std::thread::hardware_concurrency()));
  for (const auto& s : kstable::obs::MetricsRegistry::global().snapshot()) {
    std::ostringstream value;
    if (s.kind == kstable::obs::MetricsRegistry::Sample::Kind::histogram) {
      value << s.value << '/' << s.count;
    } else {
      value << s.value;
    }
    benchmark::AddCustomContext("kstable." + s.name, value.str());
  }
}

}  // namespace kstable::benchsupport

/// Defines main(): print the report, then run registered benchmarks with the
/// metrics registry snapshot attached to the benchmark context/JSON output.
#define KSTABLE_BENCH_MAIN(report_fn)                                   \
  int main(int argc, char** argv) {                                     \
    if (::kstable::benchsupport::refuse_non_release_export(argc, argv)) \
      return 2;                                                         \
    report_fn();                                                        \
    benchmark::Initialize(&argc, argv);                                 \
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;   \
    ::kstable::benchsupport::attach_metrics_context();                  \
    benchmark::RunSpecifiedBenchmarks();                                \
    benchmark::Shutdown();                                              \
    return 0;                                                           \
  }
