// Shared harness glue for the experiment benchmarks.
//
// Every bench binary first prints its paper-shaped report (the rows a figure
// or theorem in the paper corresponds to), then runs its google-benchmark
// microbenchmarks. EXPERIMENTS.md records the printed reports against the
// paper's claims.
//
// Each binary also attaches the process-wide kstable metrics registry
// (proposals, cache hits, ladder rungs, ... — docs/OBSERVABILITY.md) to the
// google-benchmark context, so a `--benchmark_out=BENCH_X.json` run carries
// the library's own counters alongside the timing rows. The snapshot is taken
// after the report phase, i.e. it covers the report's solves; benchmark
// iterations run afterwards and can be diffed against it with a second
// export.
#pragma once

#include <benchmark/benchmark.h>

#include <iostream>
#include <sstream>

#include "core/kstable.hpp"

namespace kstable::benchsupport {

/// Adds every registered instrument as a "kstable.<name>" context entry
/// (counters/gauges as the value, histograms as "sum/count").
inline void attach_metrics_context() {
  for (const auto& s : kstable::obs::MetricsRegistry::global().snapshot()) {
    std::ostringstream value;
    if (s.kind == kstable::obs::MetricsRegistry::Sample::Kind::histogram) {
      value << s.value << '/' << s.count;
    } else {
      value << s.value;
    }
    benchmark::AddCustomContext("kstable." + s.name, value.str());
  }
}

}  // namespace kstable::benchsupport

/// Defines main(): print the report, then run registered benchmarks with the
/// metrics registry snapshot attached to the benchmark context/JSON output.
#define KSTABLE_BENCH_MAIN(report_fn)                                   \
  int main(int argc, char** argv) {                                     \
    report_fn();                                                        \
    benchmark::Initialize(&argc, argv);                                 \
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;   \
    ::kstable::benchsupport::attach_metrics_context();                  \
    benchmark::RunSpecifiedBenchmarks();                                \
    benchmark::Shutdown();                                              \
    return 0;                                                           \
  }
