// Shared harness glue for the experiment benchmarks.
//
// Every bench binary first prints its paper-shaped report (the rows a figure
// or theorem in the paper corresponds to), then runs its google-benchmark
// microbenchmarks. EXPERIMENTS.md records the printed reports against the
// paper's claims.
#pragma once

#include <benchmark/benchmark.h>

#include <iostream>

#include "core/kstable.hpp"

/// Defines main(): print the report, then run registered benchmarks.
#define KSTABLE_BENCH_MAIN(report_fn)                                   \
  int main(int argc, char** argv) {                                     \
    report_fn();                                                        \
    benchmark::Initialize(&argc, argv);                                 \
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;   \
    benchmark::RunSpecifiedBenchmarks();                                \
    benchmark::Shutdown();                                              \
    return 0;                                                           \
  }
