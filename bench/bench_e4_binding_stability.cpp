// E4 — Theorem 2 / Fig. 3 / §IV.A: the Iterative Binding GS algorithm always
// produces a stable k-ary matching.
//
// Paper claims regenerated:
//  * the Fig. 3 instance with bindings M-W, W-U yields (m, w, u), (m', w', u');
//  * across random instances and random binding trees, the stability rate is
//    100% — verified exactly at small sizes and with the polynomial pairs
//    screen + randomized probes at larger sizes;
//  * different binding trees yield different stable matchings (§IV.B).

#include "bench_common.hpp"

namespace {

using namespace kstable;

void report() {
  std::cout << "E4: Theorem 2 — stable k-ary matching via iterative binding\n\n";

  {
    const auto inst = examples::fig3_instance();
    BindingStructure tree(3);
    tree.add_edge({0, 1});
    tree.add_edge({1, 2});
    const auto result = core::iterative_binding(inst, tree);
    std::cout << "Fig. 3 instance, bindings M-W, W-U: ";
    for (Index t = 0; t < 2; ++t) {
      std::cout << '(';
      for (Gender g = 0; g < 3; ++g) {
        std::cout << (g ? ", " : "") << result.matching().member_at(t, g);
      }
      std::cout << ") ";
    }
    std::cout << " [paper: (m, w, u), (m', w', u')]\n\n";
  }

  TableWriter stability(
      "Stability rate of Algorithm 1 over random instances + random trees "
      "(exact check for n<=5, pairs+sampled probes above)",
      {"k", "n", "seeds", "stable", "proposals avg", "check"});
  for (const auto& [k, n, seeds] : std::vector<std::tuple<Gender, Index, int>>{
           {3, 4, 50}, {4, 4, 50}, {5, 4, 30}, {3, 64, 20}, {4, 128, 10},
           {8, 64, 10}, {5, 256, 5}}) {
    int stable = 0;
    std::int64_t proposals = 0;
    const bool exact = n <= 5;
    for (int seed = 0; seed < seeds; ++seed) {
      Rng rng(static_cast<std::uint64_t>(seed) * 7919 +
              static_cast<std::uint64_t>(k * 100 + n));
      const auto inst = gen::uniform(k, n, rng);
      const auto tree = prufer::random_tree(k, rng);
      const auto result = core::iterative_binding(inst, tree);
      proposals += result.total_proposals;
      bool blocked;
      if (exact) {
        blocked =
            analysis::find_blocking_family(inst, result.matching()).has_value();
      } else {
        Rng probe(static_cast<std::uint64_t>(seed) + 1);
        blocked = analysis::find_blocking_family_pairs(
                      inst, result.matching(), analysis::BlockingMode::strict)
                      .has_value() ||
                  analysis::find_blocking_family_sampled(
                      inst, result.matching(), probe, 5000)
                      .has_value();
      }
      stable += !blocked;
    }
    stability.add_row({std::int64_t{k}, std::int64_t{n}, std::int64_t{seeds},
                       std::int64_t{stable},
                       static_cast<double>(proposals) / seeds,
                       std::string(exact ? "exact" : "pairs+sampled")});
  }
  stability.print(std::cout);

  // §IV.B: different trees -> different stable matchings (count distinct
  // outcomes over all 16 trees of a k=4 instance).
  Rng rng(99);
  const auto inst = gen::uniform(4, 4, rng);
  std::vector<std::vector<Index>> outcomes;
  prufer::enumerate_trees(4, [&](const BindingStructure& tree) {
    const auto result = core::iterative_binding(inst, tree);
    outcomes.push_back(result.matching().raw());
  });
  std::sort(outcomes.begin(), outcomes.end());
  const auto distinct = std::unique(outcomes.begin(), outcomes.end()) -
                        outcomes.begin();
  std::cout << "Distinct stable matchings across all 16 binding trees "
               "(k=4, n=4, one instance): "
            << distinct << "\n\n";
}

void bm_iterative_binding(benchmark::State& state) {
  const auto k = static_cast<Gender>(state.range(0));
  const auto n = static_cast<Index>(state.range(1));
  Rng rng(31);
  const auto inst = gen::uniform(k, n, rng);
  const auto tree = trees::path(k);
  for (auto _ : state) {
    const auto result = core::iterative_binding(inst, tree);
    benchmark::DoNotOptimize(result.total_proposals);
  }
  state.counters["proposals"] = 0;
}
BENCHMARK(bm_iterative_binding)
    ->Args({3, 128})
    ->Args({3, 512})
    ->Args({5, 128})
    ->Args({5, 512})
    ->Args({8, 256});

void bm_exact_stability_check(benchmark::State& state) {
  const auto n = static_cast<Index>(state.range(0));
  Rng rng(32);
  const auto inst = gen::uniform(3, n, rng);
  const auto result = core::iterative_binding(inst, trees::path(3));
  for (auto _ : state) {
    const auto blocked = analysis::find_blocking_family(inst, result.matching());
    benchmark::DoNotOptimize(blocked.has_value());
  }
}
BENCHMARK(bm_exact_stability_check)->Arg(4)->Arg(8)->Arg(16);

void bm_pairs_stability_check(benchmark::State& state) {
  const auto n = static_cast<Index>(state.range(0));
  Rng rng(33);
  const auto inst = gen::uniform(4, n, rng);
  const auto result = core::iterative_binding(inst, trees::path(4));
  for (auto _ : state) {
    const auto blocked = analysis::find_blocking_family_pairs(
        inst, result.matching(), analysis::BlockingMode::strict);
    benchmark::DoNotOptimize(blocked.has_value());
  }
}
BENCHMARK(bm_pairs_stability_check)->Arg(16)->Arg(64)->Arg(128);

}  // namespace

KSTABLE_BENCH_MAIN(report)
