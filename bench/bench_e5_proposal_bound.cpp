// E5 — Theorem 3 / §IV.B: the iterative binding GS algorithm takes at most
// (k-1)n² accumulated proposals; there are k^(k-2) binding trees (Cayley).
//
// Paper claims regenerated:
//  * measured proposals never exceed (k-1)n² and typically sit far below on
//    uniform instances (≈ (k-1) · n·H(n) ≈ (k-1)·n·ln n);
//  * master-list preferences push the count to (k-1)·n(n+1)/2 — the same
//    quadratic order as the bound;
//  * Cayley's k^(k-2) tree count, cross-checked by explicit enumeration.

#include "bench_common.hpp"

namespace {

using namespace kstable;

void report() {
  std::cout << "E5: Theorem 3 proposal bound and Cayley tree counts\n\n";

  TableWriter bound("Accumulated proposals vs the (k-1)n^2 bound (path trees)",
                    {"k", "n", "prefs", "proposals", "bound", "ratio"});
  Rng rng(41);
  for (const auto& [k, n] : std::vector<std::pair<Gender, Index>>{
           {3, 64}, {3, 256}, {3, 1024}, {5, 256}, {8, 256}, {8, 1024}}) {
    const auto uniform_inst = gen::uniform(k, n, rng);
    const auto u = core::iterative_binding(uniform_inst, trees::path(k));
    const std::int64_t cap = static_cast<std::int64_t>(k - 1) * n * n;
    bound.add_row({std::int64_t{k}, std::int64_t{n}, std::string("uniform"),
                   u.total_proposals, cap,
                   static_cast<double>(u.total_proposals) /
                       static_cast<double>(cap)});
    const auto master_inst = gen::master_list(k, n, rng);
    const auto m = core::iterative_binding(master_inst, trees::path(k));
    bound.add_row({std::int64_t{k}, std::int64_t{n}, std::string("master"),
                   m.total_proposals, cap,
                   static_cast<double>(m.total_proposals) /
                       static_cast<double>(cap)});
  }
  bound.print(std::cout);

  TableWriter shape("Proposal counts by tree shape (k=8, n=256, uniform)",
                    {"tree", "max degree", "proposals"});
  Rng rng2(42);
  const auto inst = gen::uniform(8, 256, rng2);
  const auto add = [&](const std::string& name, const BindingStructure& t) {
    const auto r = core::iterative_binding(inst, t);
    shape.add_row({name, std::int64_t{t.max_degree()}, r.total_proposals});
  };
  add("path", trees::path(8));
  add("star(0)", trees::star(8, 0));
  add("caterpillar(4)", trees::caterpillar(8, 4));
  Rng tr(43);
  add("random", prufer::random_tree(8, tr));
  shape.print(std::cout);

  TableWriter cayley("Cayley counts k^(k-2) (enumeration cross-check to k=7)",
                     {"k", "k^(k-2)", "enumerated"});
  for (Gender k = 2; k <= 8; ++k) {
    std::int64_t enumerated = -1;
    if (k <= 7) {
      enumerated = 0;
      prufer::enumerate_trees(k, [&](const BindingStructure&) { ++enumerated; });
    }
    cayley.add_row({std::int64_t{k}, prufer::cayley_count(k),
                    enumerated < 0 ? std::string("(skipped)")
                                   : std::to_string(enumerated)});
  }
  cayley.print(std::cout);
}

void bm_binding_uniform(benchmark::State& state) {
  const auto k = static_cast<Gender>(state.range(0));
  const auto n = static_cast<Index>(state.range(1));
  Rng rng(44);
  const auto inst = gen::uniform(k, n, rng);
  const auto tree = trees::path(k);
  std::int64_t proposals = 0;
  for (auto _ : state) {
    const auto r = core::iterative_binding(inst, tree);
    proposals = r.total_proposals;
    benchmark::DoNotOptimize(proposals);
  }
  state.counters["proposals"] = static_cast<double>(proposals);
  state.counters["bound"] = static_cast<double>(k - 1) * n * n;
}
BENCHMARK(bm_binding_uniform)->Args({3, 256})->Args({5, 256})->Args({8, 256});

void bm_binding_master(benchmark::State& state) {
  const auto k = static_cast<Gender>(state.range(0));
  const auto n = static_cast<Index>(state.range(1));
  Rng rng(45);
  const auto inst = gen::master_list(k, n, rng);
  const auto tree = trees::path(k);
  for (auto _ : state) {
    const auto r = core::iterative_binding(inst, tree);
    benchmark::DoNotOptimize(r.total_proposals);
  }
}
BENCHMARK(bm_binding_master)->Args({3, 256})->Args({8, 256});

void bm_prufer_roundtrip(benchmark::State& state) {
  const auto k = static_cast<Gender>(state.range(0));
  Rng rng(46);
  for (auto _ : state) {
    const auto tree = prufer::random_tree(k, rng);
    const auto seq = prufer::encode(tree);
    benchmark::DoNotOptimize(seq.data());
  }
}
BENCHMARK(bm_prufer_roundtrip)->Arg(8)->Arg(16)->Arg(26);

}  // namespace

KSTABLE_BENCH_MAIN(report)
