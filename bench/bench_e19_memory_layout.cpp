// E19 — large-n memory layout: compact rank tables, arena storage, and the
// prefetch/SIMD scan engine (docs/PERFORMANCE.md §Compact memory layout).
//
// Claims regenerated:
//  * the compact layout (no same-gender diagonal rows + width-adaptive
//    uint16_t ranks for n < 65536) shrinks per-instance table bytes by
//    8/3 ≈ 2.67× for bipartite instances vs the seed layout
//    (k·k rows × 4-byte ranks);
//  * narrow16 and wide32 rank layouts are bitwise-identical in outcomes
//    (matching AND proposal count) across the queue and prefetch engines —
//    the self-check line below is grepped by CI;
//  * the prefetch engine (software-prefetch pipeline over the proposal
//    stream) beats the scalar queue path once the rank table outgrows the
//    LLC, and 16-bit ranks beat 32-bit by halving the random-read footprint;
//  * the vectorized row-scan kernels (gs/simd.hpp) give the streaming
//    bandwidth ceiling that contextualizes the random-access numbers.
//
// The n sweep is CI-safe by default (max n = 8192 ≈ 0.8 GB per instance);
// set KSTABLE_E19_MAX_N (e.g. 32768) for big-memory runs. Compile-time knob
// KSTABLE_ARENA_EXTENT_BYTES sets the arena extent granularity.

#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "gs/scan_gs.hpp"
#include "gs/simd.hpp"

namespace {

using namespace kstable;

Index e19_max_n() {
  if (const char* env = std::getenv("KSTABLE_E19_MAX_N")) {
    const long long v = std::atoll(env);
    if (v >= 1024 && v < 65536) return static_cast<Index>(v);
  }
  return 8192;
}

/// Table bytes of the seed layout this PR replaced: k·k·n·n rows (dead
/// same-gender diagonal included) and 4-byte ranks at every n.
std::int64_t seed_layout_bytes(Gender k, Index n) {
  const auto cells = static_cast<std::int64_t>(k) * k * n * n;
  return cells * static_cast<std::int64_t>(sizeof(Index) + sizeof(std::int32_t));
}

/// Bytes a single proposal touches in the tables: one pref cell, the
/// responder-match slot, and the two rank cells of the accept/reject compare.
std::int64_t bytes_per_proposal(const KPartiteInstance& inst) {
  return static_cast<std::int64_t>(
      sizeof(Index) + sizeof(Index) +
      2 * prefs::rank_entry_bytes(inst.rank_width()));
}

void report() {
  const Index max_n = e19_max_n();
  std::cout << "E19: large-n memory layout — compact ranks, arena storage, "
               "prefetch engine\n"
            << "(max n = " << max_n
            << "; extend with KSTABLE_E19_MAX_N; SIMD dispatch: "
            << gs::simd::to_string(gs::simd::best_isa()) << ")\n\n";

  TableWriter footprint(
      "Table footprint vs the seed layout (k=2, uniform)",
      {"n", "seed bytes", "compact bytes", "shrink", "arena bytes", "width"});
  TableWriter timing(
      "GS wall clock and bytes/proposal (k=2, uniform, seed 191)",
      {"n", "queue ms", "prefetch16 ms", "prefetch32 ms", "B/proposal 16",
       "B/proposal 32"});
  bool all_identical = true;
  Rng rng(191);
  for (Index n = 1024; n <= max_n; n *= 4) {
    const auto narrow = gen::uniform(2, n, rng);
    const auto wide = KPartiteInstance::relaid(narrow, prefs::RankWidth::wide32);
    const auto compact_bytes =
        static_cast<std::int64_t>(narrow.pref_bytes() + narrow.rank_bytes());
    footprint.add_row(
        {std::int64_t{n}, seed_layout_bytes(2, n), compact_bytes,
         static_cast<double>(seed_layout_bytes(2, n)) /
             static_cast<double>(compact_bytes),
         static_cast<std::int64_t>(narrow.arena_bytes()),
         std::string(prefs::to_string(narrow.rank_width()))});

    const auto queue = gs::gale_shapley_queue(narrow, 0, 1);
    const auto pre16 = gs::gale_shapley_prefetch(narrow, 0, 1);
    const auto pre32 = gs::gale_shapley_prefetch(wide, 0, 1);
    all_identical = all_identical &&
                    pre16.proposer_match == queue.proposer_match &&
                    pre16.responder_match == queue.responder_match &&
                    pre16.proposals == queue.proposals &&
                    pre32.proposer_match == queue.proposer_match &&
                    pre32.proposals == queue.proposals;
    timing.add_row({std::int64_t{n}, queue.wall_ms, pre16.wall_ms,
                    pre32.wall_ms, bytes_per_proposal(narrow),
                    bytes_per_proposal(wide)});
  }
  footprint.print(std::cout);
  timing.print(std::cout);
  std::cout << "narrow16/wide32/queue outcomes bitwise identical: "
            << (all_identical ? "yes (layout is semantics-free)" : "NO (BUG)")
            << "\n\n";
}

/// Warm into-style solve loop shared by the engine benchmarks: measures the
/// steady-state zero-allocation path, not construction.
template <typename Solve>
void run_warm(benchmark::State& state, const KPartiteInstance& inst,
              Solve&& solve) {
  gs::GsWorkspace workspace;
  gs::GsResult result;
  solve(inst, workspace, result);  // warm-up outside the timed region
  std::int64_t proposals = 0;
  for (auto _ : state) {
    solve(inst, workspace, result);
    proposals += result.proposals;
    benchmark::DoNotOptimize(result.proposer_match.data());
  }
  state.counters["proposals"] =
      benchmark::Counter(static_cast<double>(proposals),
                         benchmark::Counter::kAvgIterations);
  state.counters["table_mb"] = static_cast<double>(
      inst.pref_bytes() + inst.rank_bytes()) / (1024.0 * 1024.0);
  state.SetBytesProcessed(proposals * bytes_per_proposal(inst));
}

void bm_gs_queue_narrow(benchmark::State& state) {
  Rng rng(193);
  const auto inst = gen::uniform(2, static_cast<Index>(state.range(0)), rng);
  run_warm(state, inst, [](const auto& in, auto& w, auto& r) {
    gs::gale_shapley_queue(in, 0, 1, {}, w, r);
  });
}

void bm_gs_queue_wide(benchmark::State& state) {
  Rng rng(193);
  const auto inst = KPartiteInstance::relaid(
      gen::uniform(2, static_cast<Index>(state.range(0)), rng),
      prefs::RankWidth::wide32);
  run_warm(state, inst, [](const auto& in, auto& w, auto& r) {
    gs::gale_shapley_queue(in, 0, 1, {}, w, r);
  });
}

void bm_gs_prefetch_narrow(benchmark::State& state) {
  Rng rng(193);
  const auto inst = gen::uniform(2, static_cast<Index>(state.range(0)), rng);
  run_warm(state, inst, [](const auto& in, auto& w, auto& r) {
    gs::gale_shapley_prefetch(in, 0, 1, {}, w, r);
  });
}

void bm_gs_prefetch_wide(benchmark::State& state) {
  Rng rng(193);
  const auto inst = KPartiteInstance::relaid(
      gen::uniform(2, static_cast<Index>(state.range(0)), rng),
      prefs::RankWidth::wide32);
  run_warm(state, inst, [](const auto& in, auto& w, auto& r) {
    gs::gale_shapley_prefetch(in, 0, 1, {}, w, r);
  });
}

void e19_sizes(benchmark::internal::Benchmark* bench) {
  for (Index n = 1024; n <= e19_max_n(); n *= 2) bench->Arg(n);
}

BENCHMARK(bm_gs_queue_narrow)->Apply(e19_sizes);
BENCHMARK(bm_gs_queue_wide)->Apply(e19_sizes);
BENCHMARK(bm_gs_prefetch_narrow)->Apply(e19_sizes);
BENCHMARK(bm_gs_prefetch_wide)->Apply(e19_sizes);

// SIMD scan engine vs the scalar scan ablation: the vectorized first-of-pair
// kernel against the same O(n) list walks.
void bm_scan_scalar(benchmark::State& state) {
  Rng rng(194);
  const auto inst = gen::uniform(2, static_cast<Index>(state.range(0)), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gs::gale_shapley_scan(inst, 0, 1).proposals);
  }
}
BENCHMARK(bm_scan_scalar)->Arg(1024)->Arg(2048);

void bm_scan_simd(benchmark::State& state) {
  Rng rng(194);
  const auto inst = gen::uniform(2, static_cast<Index>(state.range(0)), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gs::gale_shapley_scan_simd(inst, 0, 1).proposals);
  }
}
BENCHMARK(bm_scan_simd)->Arg(1024)->Arg(2048);

// Streaming-bandwidth probes: vectorized min-scan over one rank row per
// iteration. SetBytesProcessed makes the reported rate the layout's
// sequential-read ceiling at each width.
void bm_argmin_u16(benchmark::State& state) {
  const auto len = static_cast<std::size_t>(state.range(0));
  Rng rng(195);
  std::vector<std::uint16_t> row(len);
  for (auto& v : row) v = static_cast<std::uint16_t>(rng.below(65535));
  for (auto _ : state) {
    benchmark::DoNotOptimize(gs::simd::argmin_u16(row.data(), len));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(len * sizeof(row[0])));
}
BENCHMARK(bm_argmin_u16)->Arg(4096)->Arg(65536);

void bm_argmin_u32(benchmark::State& state) {
  const auto len = static_cast<std::size_t>(state.range(0));
  Rng rng(195);
  std::vector<std::uint32_t> row(len);
  for (auto& v : row) v = static_cast<std::uint32_t>(rng.below(1u << 30));
  for (auto _ : state) {
    benchmark::DoNotOptimize(gs::simd::argmin_u32(row.data(), len));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(len * sizeof(row[0])));
}
BENCHMARK(bm_argmin_u32)->Arg(4096)->Arg(65536);

}  // namespace

KSTABLE_BENCH_MAIN(report)
