// E17 — batch serving throughput (ROADMAP north star: many independent
// solves per second, not one big solve).
//
// core::BatchSolver fans a vector of instances across the thread pool: one
// task per instance, a thread_local GsWorkspace per worker (allocation-free
// GS after warm-up), a per-item GsEdgeCache, and a per-item ExecControl so a
// poisoned instance times out alone. This experiment measures instances/sec
// at 1, 2, 4, and hardware-concurrency threads (the registered benchmarks
// emit the same series as items_per_second in BENCH_e17.json), plus the
// per-item deadline isolation property.

#include <numeric>
#include <thread>
#include <vector>

#include "bench_common.hpp"

#include "core/batch_solver.hpp"
#include "util/timer.hpp"

namespace {

using namespace kstable;

std::vector<KPartiteInstance> make_workload(std::size_t count, Gender k,
                                            Index n) {
  // "Random Stable Matchings" (PAPERS.md) grounds the uniform random-instance
  // throughput workload: every request is an independent uniform instance.
  std::vector<KPartiteInstance> instances;
  instances.reserve(count);
  for (std::size_t seed = 0; seed < count; ++seed) {
    Rng rng(static_cast<std::uint64_t>(seed) * 6271 + 31);
    instances.push_back(gen::uniform(k, n, rng));
  }
  return instances;
}

void report() {
  std::cout << "E17: batch serving throughput (core::BatchSolver)\n\n";

  const std::size_t batch = 64;
  const Gender k = 5;
  const Index n = 64;
  const auto instances = make_workload(batch, k, n);
  const auto hw = std::max(1u, std::thread::hardware_concurrency());

  TableWriter table("Batch throughput, 64 uniform instances (k=5, n=64), "
                    "path tree, queue engine",
                    {"threads", "wall ms", "instances/sec", "ok items"});
  std::vector<std::size_t> thread_counts{1, 2, 4};
  if (hw != 1 && hw != 2 && hw != 4) thread_counts.push_back(hw);
  for (const std::size_t threads : thread_counts) {
    ThreadPool pool(threads);
    core::BatchSolver solver(pool);
    // One warm-up pass so thread_local workspaces exist, then a timed pass.
    (void)solver.solve(instances);
    WallTimer timer;
    const auto results = solver.solve(instances);
    const double ms = timer.millis();
    std::int64_t ok = 0;
    for (const auto& item : results) ok += item.status.ok() ? 1 : 0;
    table.add_row({static_cast<double>(threads), ms,
                   static_cast<double>(batch) / (ms / 1000.0),
                   static_cast<double>(ok)});
  }
  table.print(std::cout);
  std::cout << "(hardware_concurrency = " << hw << "; single-core machines "
            << "show flat scaling — the PRAM-style model costs in E7 are the "
            << "hardware-independent signal)\n\n";

  // Per-item deadline isolation: starving half the batch must not affect the
  // other half's outcomes.
  ThreadPool pool(hw);
  core::BatchSolver solver(pool);
  core::BatchOptions options;
  for (std::size_t i = 0; i < batch; ++i) {
    options.per_item_budgets.push_back(
        i % 2 == 0 ? resilience::Budget{}
                   : resilience::Budget::proposals(3));
  }
  const auto mixed = solver.solve(instances, options);
  std::int64_t ok = 0, aborted = 0;
  for (const auto& item : mixed) {
    (item.status.ok() ? ok : aborted) += 1;
  }
  std::cout << "Deadline isolation: " << ok << " unlimited items ok, "
            << aborted << " starved items aborted(proposal-budget), "
            << "statuses independent per item.\n";
}

void bm_batch_throughput(benchmark::State& state) {
  const auto requested = static_cast<std::size_t>(state.range(0));
  const std::size_t threads =
      requested == 0 ? std::max(1u, std::thread::hardware_concurrency())
                     : requested;
  const auto instances = make_workload(32, 5, 64);
  ThreadPool pool(threads);
  core::BatchSolver solver(pool);
  for (auto _ : state) {
    const auto results = solver.solve(instances);
    benchmark::DoNotOptimize(results.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(instances.size()));
  state.counters["threads"] = static_cast<double>(threads);
}
// Arg(0) = hardware concurrency, resolved at run time. UseRealTime: the work
// happens on pool threads, so rates must divide by wall time, not the main
// thread's CPU time.
BENCHMARK(bm_batch_throughput)->Arg(1)->Arg(2)->Arg(4)->Arg(0)
    ->UseRealTime()->Unit(benchmark::kMillisecond);

void bm_batch_cost_aware(benchmark::State& state) {
  const auto requested = static_cast<std::size_t>(state.range(0));
  const std::size_t threads =
      requested == 0 ? std::max(1u, std::thread::hardware_concurrency())
                     : requested;
  const auto instances = make_workload(16, 5, 64);
  ThreadPool pool(threads);
  core::BatchSolver solver(pool);
  core::BatchOptions options;
  options.tree = core::BatchTree::cost_aware;
  for (auto _ : state) {
    const auto results = solver.solve(instances, options);
    benchmark::DoNotOptimize(results.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(instances.size()));
  state.counters["threads"] = static_cast<double>(threads);
}
BENCHMARK(bm_batch_cost_aware)->Arg(1)->Arg(0)->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void bm_gs_workspace_reuse(benchmark::State& state) {
  // The zero-allocation hot path in isolation: one warm workspace + result,
  // solving the same binding repeatedly (the per-worker serving shape).
  Rng rng(97);
  const auto inst = gen::uniform(2, static_cast<Index>(state.range(0)), rng);
  gs::GsWorkspace workspace;
  gs::GsResult result;
  const gs::GsOptions options;
  gs::gale_shapley_queue(inst, 0, 1, options, workspace, result);  // warm
  for (auto _ : state) {
    gs::gale_shapley_queue(inst, 0, 1, options, workspace, result);
    benchmark::DoNotOptimize(result.proposals);
  }
}
BENCHMARK(bm_gs_workspace_reuse)->Arg(64)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMicrosecond);

void bm_gs_fresh_alloc(benchmark::State& state) {
  // Baseline for bm_gs_workspace_reuse: the by-value API allocates workspace
  // and result every solve.
  Rng rng(97);
  const auto inst = gen::uniform(2, static_cast<Index>(state.range(0)), rng);
  for (auto _ : state) {
    const auto result = gs::gale_shapley_queue(inst, 0, 1);
    benchmark::DoNotOptimize(result.proposals);
  }
}
BENCHMARK(bm_gs_fresh_alloc)->Arg(64)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

KSTABLE_BENCH_MAIN(report)
