// E18 — TreeSweep engine: parallel sweep over all k^(k-2) binding trees with
// the sharded single-flight GsEdgeCache.
//
// Cayley's formula (cited for Theorem 3) gives k^(k-2) spanning binding
// trees; Prüfer random access (prufer::tree_at) makes the index space
// chunkable, so the sweep fans the trees across the pool with work stealing
// while all workers share one edge cache. Three claims are measured:
//
//   1. Thread scaling: trees/sec vs pool size (the wall-clock speedup column
//      is hardware-dependent; on a single-core host the hardware-independent
//      signals are the schedule counters and the determinism checks).
//   2. Cache ablation: no cache vs the legacy duplicate-compute policy vs
//      single-flight. Single-flight must show zero duplicate GS computes
//      (misses == entries) at any thread count; the duplicate policy is the
//      control that shows what deduplication buys.
//   3. Determinism: every configuration — any thread count, any cache policy,
//      cache off — lands on the bitwise-identical best tree and matching.

#include <string>
#include <vector>

#include "bench_common.hpp"

#include "core/gs_cache.hpp"
#include "core/tree_sweep.hpp"
#include "graph/prufer.hpp"

namespace {

using namespace kstable;

struct SweepRun {
  core::TreeSweepResult result;
  core::GsEdgeCache::Stats cache_stats;
  std::size_t cache_entries = 0;
};

enum class CacheMode { off, duplicate, single_flight };

SweepRun run_sweep(const KPartiteInstance& inst, ThreadPool* pool,
                   CacheMode mode) {
  core::TreeSweepOptions options;
  options.pool = pool;
  SweepRun run;
  if (mode == CacheMode::off) {
    run.result = core::sweep_all_trees(inst, options);
    return run;
  }
  core::GsEdgeCache cache(inst.genders(),
                          mode == CacheMode::duplicate
                              ? core::GsEdgeCache::Policy::duplicate
                              : core::GsEdgeCache::Policy::single_flight);
  options.cache = &cache;
  run.result = core::sweep_all_trees(inst, options);
  run.cache_stats = cache.stats();
  run.cache_entries = cache.size();
  return run;
}

void report() {
  std::cout << "E18: parallel binding-tree sweep with the sharded "
               "single-flight edge cache\n\n";

  const Gender k = 5;
  const Index n = 64;
  Rng rng(8101);
  const auto inst = gen::uniform(k, n, rng);
  const std::int64_t tree_count = prufer::cayley_count(k);

  // Sequential reference: no pool, shared single-flight cache.
  const SweepRun reference = run_sweep(inst, nullptr, CacheMode::single_flight);

  // --- 1. Thread scaling (shared single-flight cache) -----------------------
  TableWriter scaling("Thread scaling: sweep of all " +
                          std::to_string(tree_count) +
                          " trees (k=5, n=64, uniform, single-flight cache)",
                      {"threads", "wall ms", "trees/sec", "chunks", "steals",
                       "executed proposals", "identical"});
  bool all_identical = true;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}, std::size_t{8}}) {
    ThreadPool pool(threads);
    const SweepRun run = run_sweep(inst, &pool, CacheMode::single_flight);
    const bool identical =
        run.result.best_index == reference.result.best_index &&
        run.result.best_cost == reference.result.best_cost &&
        run.result.matching() == reference.result.matching() &&
        run.result.best->total_proposals ==
            reference.result.best->total_proposals;
    all_identical = all_identical && identical;
    scaling.add_row({static_cast<double>(threads), run.result.stats.wall_ms,
                     run.result.stats.trees_per_sec,
                     static_cast<double>(run.result.stats.chunks),
                     static_cast<double>(run.result.stats.steals),
                     static_cast<double>(run.result.stats.executed_proposals),
                     std::string(identical ? "yes" : "NO (BUG)")});
  }
  scaling.print(std::cout);
  std::cout << "Wall-clock speedup is hardware-dependent (this host may be "
               "single-core; acceptance target is >=3x at 8 threads on >=8 "
               "cores). Hardware-independent signals: chunks/steals show the "
               "work-stealing schedule engaged, 'identical' shows the fold is "
               "schedule-invariant.\n\n";

  // --- 2. Cache ablation at 8 threads ---------------------------------------
  TableWriter ablation(
      "Cache ablation at 8 threads (k=5, n=64, " +
          std::to_string(tree_count) + " trees x " + std::to_string(k - 1) +
          " edges = " + std::to_string(tree_count * (k - 1)) + " edge solves)",
      {"cache", "executed proposals", "fresh GS runs", "duplicate runs",
       "cache hits", "sf waits", "identical"});
  std::int64_t single_flight_duplicates = -1;
  for (const CacheMode mode :
       {CacheMode::off, CacheMode::duplicate, CacheMode::single_flight}) {
    ThreadPool pool(8);
    const SweepRun run = run_sweep(inst, &pool, mode);
    const bool identical =
        run.result.best_index == reference.result.best_index &&
        run.result.matching() == reference.result.matching();
    all_identical = all_identical && identical;
    const char* name = mode == CacheMode::off          ? "off"
                       : mode == CacheMode::duplicate  ? "on (duplicate)"
                                                       : "on (single-flight)";
    // Fresh GS runs with the cache off: every edge of every tree.
    const double fresh = mode == CacheMode::off
                             ? static_cast<double>(tree_count * (k - 1))
                             : static_cast<double>(run.cache_stats.misses);
    const std::int64_t duplicates =
        mode == CacheMode::off
            ? 0
            : run.cache_stats.misses -
                  static_cast<std::int64_t>(run.cache_entries);
    if (mode == CacheMode::single_flight) {
      single_flight_duplicates = duplicates;
    }
    ablation.add_row(
        {std::string(name),
         static_cast<double>(run.result.stats.executed_proposals), fresh,
         static_cast<double>(duplicates),
         static_cast<double>(run.cache_stats.hits),
         static_cast<double>(run.cache_stats.single_flight_waits),
         std::string(identical ? "yes" : "NO (BUG)")});
  }
  ablation.print(std::cout);
  std::cout << "Zero duplicate GS computations under single-flight: "
            << (single_flight_duplicates == 0 ? "yes" : "NO (BUG)")
            << " (misses == stored entries; the duplicate row is the legacy "
               "policy's cost, the off row the uncached ceiling).\n\n";

  // --- 3. Determinism summary ------------------------------------------------
  std::cout << "Determinism: best tree index " << reference.result.best_index
            << " (bound-pair cost " << reference.result.best_cost
            << ") reproduced bitwise across every thread count and cache "
               "policy: "
            << (all_identical ? "yes" : "NO (BUG)") << ".\n";
}

// Registered twins for BENCH_e18.json. range(0) = pool threads (0 = no pool,
// pure sequential path).
void bm_sweep_threads(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  const Gender k = 5;
  Rng rng(8101);
  const auto inst = gen::uniform(k, 64, rng);
  ThreadPool pool(threads == 0 ? 1 : threads);
  std::int64_t steals = 0;
  for (auto _ : state) {
    core::GsEdgeCache cache(k);
    core::TreeSweepOptions options;
    options.pool = threads == 0 ? nullptr : &pool;
    options.cache = &cache;
    const auto result = core::sweep_all_trees(inst, options);
    steals = result.stats.steals;
    benchmark::DoNotOptimize(result.best_cost);
  }
  state.counters["trees"] = static_cast<double>(prufer::cayley_count(k));
  state.counters["steals"] = static_cast<double>(steals);
}
BENCHMARK(bm_sweep_threads)->Arg(0)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// range(0): 0 = cache off, 1 = duplicate policy, 2 = single-flight; always
// 8 pool threads, so the policies face the same contention.
void bm_sweep_cache_policy(benchmark::State& state) {
  const Gender k = 5;
  Rng rng(8101);
  const auto inst = gen::uniform(k, 64, rng);
  ThreadPool pool(8);
  std::int64_t misses = 0;
  for (auto _ : state) {
    const auto mode = state.range(0) == 0   ? CacheMode::off
                      : state.range(0) == 1 ? CacheMode::duplicate
                                            : CacheMode::single_flight;
    const SweepRun run = run_sweep(inst, &pool, mode);
    misses = run.cache_stats.misses;
    benchmark::DoNotOptimize(run.result.best_cost);
  }
  state.counters["fresh_gs_runs"] = static_cast<double>(misses);
}
BENCHMARK(bm_sweep_cache_policy)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// Scheduling overhead in isolation: an empty-body sweep over a large index
// space measures claim/steal cost per chunk without any GS work.
void bm_sweep_schedule_overhead(benchmark::State& state) {
  const auto chunk = static_cast<std::int64_t>(state.range(0));
  ThreadPool pool(8);
  for (auto _ : state) {
    const auto schedule = core::sweep_index_space(
        1 << 16, pool, chunk,
        [](std::size_t, std::int64_t begin, std::int64_t end) {
          benchmark::DoNotOptimize(end - begin);
        });
    benchmark::DoNotOptimize(schedule.chunks);
  }
  state.counters["chunk"] = static_cast<double>(chunk);
}
BENCHMARK(bm_sweep_schedule_overhead)->Arg(8)->Arg(64)->Arg(512)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace

KSTABLE_BENCH_MAIN(report)
