// E11 — §VII future work: quorum-based relaxation of the unstable condition.
//
// Regenerated series (our formalization; the paper only sketches the
// direction):
//  * the census of q-stable k-ary matchings grows monotonically with q and
//    meets the strict (§IV.A) count at q = 1;
//  * Algorithm 1's matching is guaranteed stable at q = 1 (Theorem 2) but is
//    blocked with increasing probability as the quorum drops — quantifying
//    how much stronger a guarantee the weakened models demand;
//  * the star-at-imax binding resists low-quorum blocking better than a path
//    tree (more members are bound directly to a hub they cannot improve on).

#include "bench_common.hpp"

namespace {

using namespace kstable;

void report() {
  std::cout << "E11: quorum-relaxed stability (§VII future work)\n\n";

  {
    Rng rng(111);
    const auto inst = gen::uniform(3, 3, rng);
    const std::vector<double> quorums{0.2, 0.34, 0.5, 0.67, 1.0};
    const auto stable = analysis::quorum_stable_census(inst, quorums);
    TableWriter census("q-stable census over all 36 ternary matchings "
                       "(k=3, n=3, one instance)",
                       {"quorum", "q-stable matchings"});
    for (std::size_t i = 0; i < quorums.size(); ++i) {
      census.add_row({quorums[i], stable[i]});
    }
    census.print(std::cout);
  }

  TableWriter rates(
      "Blocked-rate of Algorithm 1 matchings vs quorum (k=4, n=4, 40 seeds, "
      "exhaustive tuple search)",
      {"quorum", "path tree blocked %", "star@imax blocked %"});
  for (const double q : {0.2, 0.4, 0.6, 0.8, 1.0}) {
    int path_blocked = 0;
    int star_blocked = 0;
    const int seeds = 40;
    for (int seed = 0; seed < seeds; ++seed) {
      Rng rng(static_cast<std::uint64_t>(seed) * 211 + 17);
      const auto inst = gen::uniform(4, 4, rng);
      const auto path_result = core::iterative_binding(inst, trees::path(4));
      path_blocked += analysis::find_quorum_blocking_family(
                          inst, path_result.matching(), q)
                          .has_value();
      const auto star_result =
          core::iterative_binding(inst, trees::star(4, 3));
      star_blocked += analysis::find_quorum_blocking_family(
                          inst, star_result.matching(), q)
                          .has_value();
    }
    rates.add_row({q, 100.0 * path_blocked / seeds,
                   100.0 * star_blocked / seeds});
  }
  rates.print(std::cout);
  std::cout << "Expected: 0% blocked at q=1 for both trees (Theorem 2); "
               "blocked-rate rises as the quorum drops.\n\n";
}

void bm_quorum_exhaustive(benchmark::State& state) {
  const auto n = static_cast<Index>(state.range(0));
  Rng rng(112);
  const auto inst = gen::uniform(3, n, rng);
  const auto result = core::iterative_binding(inst, trees::path(3));
  for (auto _ : state) {
    const auto witness =
        analysis::find_quorum_blocking_family(inst, result.matching(), 0.5);
    benchmark::DoNotOptimize(witness.has_value());
  }
}
BENCHMARK(bm_quorum_exhaustive)->Arg(3)->Arg(5)->Arg(8);

void bm_quorum_sampled(benchmark::State& state) {
  const auto n = static_cast<Index>(state.range(0));
  Rng rng(113);
  const auto inst = gen::uniform(4, n, rng);
  const auto result = core::iterative_binding(inst, trees::path(4));
  Rng probe(114);
  for (auto _ : state) {
    const auto witness = analysis::find_quorum_blocking_family_sampled(
        inst, result.matching(), 0.5, probe, 1000);
    benchmark::DoNotOptimize(witness.has_value());
  }
}
BENCHMARK(bm_quorum_sampled)->Arg(64)->Arg(256);

}  // namespace

KSTABLE_BENCH_MAIN(report)
