// E10 — §III.B: the two phases of the stable-roommates solver at scale.
//
// Regenerated series:
//  * solvability rate of uniform random complete roommates instances vs n
//    (known to decay slowly — roughly ~ 1/sqrt-ish shape; the paper uses the
//    solver as a subroutine, so its cost profile matters);
//  * phase-1 proposals vs phase-2 rotation eliminations and pair deletions;
//  * solve() wall time scaling.

#include "bench_common.hpp"

namespace {

using namespace kstable;

rm::RoommatesInstance random_complete(rm::Person n, Rng& rng) {
  std::vector<std::vector<rm::Person>> lists(static_cast<std::size_t>(n));
  for (rm::Person p = 0; p < n; ++p) {
    for (rm::Person q = 0; q < n; ++q) {
      if (q != p) lists[static_cast<std::size_t>(p)].push_back(q);
    }
    rng.shuffle(lists[static_cast<std::size_t>(p)]);
  }
  return rm::RoommatesInstance(std::move(lists));
}

void report() {
  std::cout << "E10: stable-roommates phases at scale (§III.B substrate)\n\n";
  TableWriter table(
      "Random complete roommates instances (100 seeds per n)",
      {"n", "solvable %", "phase-1 proposals avg", "rotations avg",
       "deletions avg"});
  for (const rm::Person n : {10, 20, 40, 80, 160}) {
    int solvable = 0;
    double proposals = 0, rotations = 0, deletions = 0;
    const int seeds = 100;
    for (int seed = 0; seed < seeds; ++seed) {
      Rng rng(static_cast<std::uint64_t>(seed) * 101 + static_cast<std::uint64_t>(n));
      const auto inst = random_complete(n, rng);
      const auto result = rm::solve(inst);
      solvable += result.has_stable;
      proposals += static_cast<double>(result.phase1_proposals);
      rotations += static_cast<double>(result.rotations_eliminated);
      deletions += static_cast<double>(result.pair_deletions);
    }
    table.add_row({std::int64_t{n}, 100.0 * solvable / seeds,
                   proposals / seeds, rotations / seeds, deletions / seeds});
  }
  table.print(std::cout);
  std::cout << "Expected shape: solvability decays as n grows (classic "
               "roommates result); work grows ~ n log n on average.\n\n";
}

void bm_solve_complete(benchmark::State& state) {
  const auto n = static_cast<rm::Person>(state.range(0));
  Rng rng(101);
  const auto inst = random_complete(n, rng);
  for (auto _ : state) {
    const auto result = rm::solve(inst);
    benchmark::DoNotOptimize(result.has_stable);
  }
}
BENCHMARK(bm_solve_complete)->RangeMultiplier(2)->Range(32, 1024)
    ->Unit(benchmark::kMicrosecond);

void bm_phase1_only(benchmark::State& state) {
  const auto n = static_cast<rm::Person>(state.range(0));
  Rng rng(102);
  const auto inst = random_complete(n, rng);
  for (auto _ : state) {
    rm::ReductionTable table(inst);
    std::int64_t proposals = 0;
    rm::Person failed = -1;
    benchmark::DoNotOptimize(rm::run_phase1(table, proposals, failed));
  }
  state.SetComplexityN(n);
}
BENCHMARK(bm_phase1_only)->RangeMultiplier(2)->Range(32, 1024)->Complexity()
    ->Unit(benchmark::kMicrosecond);

void bm_kpartite_linearize(benchmark::State& state) {
  const auto k = static_cast<Gender>(state.range(0));
  Rng rng(103);
  const auto inst = gen::uniform(k, 64, rng);
  for (auto _ : state) {
    const auto rm_inst = rm::to_roommates(inst, rm::Linearization::round_robin);
    benchmark::DoNotOptimize(rm_inst.entry_count());
  }
  state.SetLabel("build incomplete-list instance");
}
BENCHMARK(bm_kpartite_linearize)->Arg(3)->Arg(5)->Arg(8)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

KSTABLE_BENCH_MAIN(report)
