// E7 — §IV.C / Corollaries 1-2 / Fig. 4: parallel implementation of the
// binding process.
//
// Paper claims regenerated:
//  * EREW PRAM with k-1 processors: the binding tree's max degree Δ is the
//    bottleneck — the schedule has exactly Δ rounds and the charged cost is
//    at most Δn² (Corollary 1);
//  * a linear (path) binding tree finishes in TWO rounds via even-odd
//    pairing, Fig. 4 (Corollary 2);
//  * CREW collapses the schedule to one round; EREW can emulate it with
//    ceil(log2 Δ) replication rounds;
//  * real wall-clock speedup on a thread pool tracks the model's prediction.

#include "bench_common.hpp"

namespace {

using namespace kstable;

void report() {
  std::cout << "E7: parallel binding — PRAM rounds and real speedup\n\n";

  const Gender k = 8;
  const Index n = 512;
  Rng rng(71);
  const auto inst = gen::uniform(k, n, rng);
  ThreadPool pool;
  std::cout << "Instance: k=8, n=512, pool of " << pool.thread_count()
            << " threads\n\n";

  TableWriter table("Schedules and costs by tree shape and model",
                    {"tree", "Δ", "mode", "rounds", "charged iters",
                     "Δn² bound", "model speedup", "wall ms"});
  const auto run = [&](const std::string& name, const BindingStructure& tree,
                       core::ExecutionMode mode, const char* mode_name) {
    const auto report = core::execute_binding(inst, tree, mode, pool);
    table.add_row({name, std::int64_t{tree.max_degree()},
                   std::string(mode_name), report.rounds_executed,
                   report.cost.charged_iterations,
                   static_cast<std::int64_t>(tree.max_degree()) * n * n,
                   report.cost.model_speedup(),
                   report.wall_seconds * 1e3});
  };
  const auto path = trees::path(k);
  const auto star = trees::star(k, 0);
  Rng tr(72);
  const auto random_tree = prufer::random_tree(k, tr);
  for (const auto& [name, tree] :
       std::vector<std::pair<std::string, const BindingStructure*>>{
           {"path (Fig. 4)", &path}, {"star", &star}, {"random", &random_tree}}) {
    run(name, *tree, core::ExecutionMode::sequential, "sequential");
    run(name, *tree, core::ExecutionMode::erew_rounds, "EREW rounds");
    run(name, *tree, core::ExecutionMode::crew_full, "CREW 1-round");
  }
  table.print(std::cout);

  // CREW emulation accounting (Corollary 1 extension).
  TableWriter emu("EREW emulating CREW: replication rounds = ceil(log2 Δ)",
                  {"tree", "Δ", "replication rounds", "replication cost"});
  for (const auto& [name, tree] :
       std::vector<std::pair<std::string, const BindingStructure*>>{
           {"path", &path}, {"star", &star}, {"random", &random_tree}}) {
    std::vector<std::int64_t> iters(tree->edges().size(), n);  // nominal
    const auto cost = pram::charge(*tree, iters,
                                   pram::Model::erew_emulating_crew, n);
    emu.add_row({name, std::int64_t{tree->max_degree()},
                 cost.replication_rounds, cost.replication_cost});
  }
  emu.print(std::cout);
  std::cout << "Expected shape: path = 2 EREW rounds (Corollary 2), star = "
               "k-1 = 7 rounds (Corollary 1 bottleneck), CREW always 1.\n\n";
}

void bm_execute_modes(benchmark::State& state) {
  const auto mode = static_cast<core::ExecutionMode>(state.range(0));
  const auto n = static_cast<Index>(state.range(1));
  Rng rng(73);
  const auto inst = gen::uniform(8, n, rng);
  const auto tree = trees::path(8);
  ThreadPool pool;
  for (auto _ : state) {
    const auto report = core::execute_binding(inst, tree, mode, pool);
    benchmark::DoNotOptimize(report.binding.total_proposals);
  }
}
BENCHMARK(bm_execute_modes)
    ->Args({0, 256})
    ->Args({1, 256})
    ->Args({2, 256})
    ->Args({0, 1024})
    ->Args({1, 1024})
    ->Args({2, 1024})
    ->Unit(benchmark::kMillisecond);

void bm_thread_scaling(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  Rng rng(74);
  const auto inst = gen::uniform(8, 512, rng);
  const auto tree = trees::path(8);
  ThreadPool pool(threads);
  for (auto _ : state) {
    const auto report =
        core::execute_binding(inst, tree, core::ExecutionMode::crew_full, pool);
    benchmark::DoNotOptimize(report.binding.total_proposals);
  }
  state.counters["threads"] = static_cast<double>(threads);
}
BENCHMARK(bm_thread_scaling)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void bm_parallel_gs_engine(benchmark::State& state) {
  const auto n = static_cast<Index>(state.range(0));
  Rng rng(75);
  const auto inst = gen::uniform(2, n, rng);
  ThreadPool pool;
  for (auto _ : state) {
    const auto result = gs::gale_shapley_parallel(inst, 0, 1, pool);
    benchmark::DoNotOptimize(result.proposals);
  }
}
BENCHMARK(bm_parallel_gs_engine)->Arg(1024)->Arg(4096)
    ->Unit(benchmark::kMillisecond);

}  // namespace

KSTABLE_BENCH_MAIN(report)
