// E20 — incremental re-stabilization under preference churn
// (docs/INCREMENTAL.md).
//
// Claims regenerated:
//  * after a small preference delta, rematch() reproduces the cold re-solve
//    of the mutated instance bitwise (the self-check line below is grepped
//    by CI) while executing only the warm-continuation proposals — orders of
//    magnitude below the cold proposal count for single-swap deltas;
//  * the work scales with the delta, not the instance: growing n at a fixed
//    delta size leaves the warm proposal count roughly flat while the cold
//    count grows with n;
//  * targeted cache invalidation drops only the touched oriented slots of
//    the k-1 tree edges, so untouched edges replay for free.
//
// The google-benchmark rows pin the timing ratio (bm_rematch_warm vs
// bm_resolve_cold at the same n) and the deterministic warm_proposals /
// cold_proposals counters that scripts/compare_bench.py gates exactly.

#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"

namespace {

using namespace kstable;

constexpr Gender kGenders = 4;

/// Applies `swaps` random adjacent-entry swaps to `inst` and returns the
/// merged delta (the shape the serve layer would accumulate between
/// re-stabilizations). Deterministic in `rng`.
incremental::MutationDelta apply_churn(KPartiteInstance& inst, int swaps,
                                       Rng& rng) {
  const Index n = inst.per_gender();
  auto delta = incremental::MutationDelta{};
  for (int s = 0; s < swaps; ++s) {
    const MemberId m{static_cast<Gender>(rng.below(
                         static_cast<std::uint64_t>(inst.genders()))),
                     static_cast<Index>(rng.below(
                         static_cast<std::uint64_t>(n)))};
    Gender target = static_cast<Gender>(
        rng.below(static_cast<std::uint64_t>(inst.genders() - 1)));
    if (target >= m.gender) ++target;
    const auto rank = static_cast<Index>(
        rng.below(static_cast<std::uint64_t>(n - 1)));
    auto one = incremental::swap_entries(inst, m, target, rank, rank + 1);
    if (s == 0) {
      delta = std::move(one);
    } else {
      delta.merge(one);
    }
  }
  return delta;
}

void report() {
  std::cout << "E20: incremental re-stabilization under preference churn "
               "(k = " << kGenders << ", path tree, uniform)\n\n";

  TableWriter table(
      "rematch() vs cold re-solve (proposals are deterministic)",
      {"n", "swaps", "cold props", "warm props", "props ratio",
       "edges reused/warm", "slots dropped", "cold ms", "warm ms"});
  bool all_identical = true;
  const auto tree = trees::path(kGenders);
  Rng rng(201);
  for (Index n : {64, 256, 512}) {
    for (int swaps : {1, 4, 16}) {
      auto inst = gen::uniform(kGenders, n, rng);
      core::GsEdgeCache cache(inst);
      core::BindingOptions warm_init;
      warm_init.cache = &cache;
      const auto previous = core::iterative_binding(inst, tree, warm_init);

      const auto delta = apply_churn(inst, swaps, rng);
      incremental::RematchOptions options;
      options.cache = &cache;
      WallTimer warm_timer;
      const auto warm = incremental::rematch(inst, tree, previous, delta,
                                             options);
      const double warm_ms = warm_timer.millis();
      WallTimer cold_timer;
      const auto cold = core::iterative_binding(inst, tree, {});
      const double cold_ms = cold_timer.millis();

      all_identical =
          all_identical && warm.result.matching() == cold.matching();
      std::ostringstream edges;
      edges << (warm.edges_reused + warm.result.cache_hits) << "/"
            << warm.edges_warm;
      std::ostringstream slots;
      slots << warm.slots_invalidated << " of " << (kGenders - 1);
      table.add_row(
          {std::int64_t{n}, std::int64_t{swaps}, cold.total_proposals,
           warm.warm_executed_proposals,
           static_cast<double>(warm.warm_executed_proposals) /
               static_cast<double>(cold.total_proposals),
           edges.str(), slots.str(), cold_ms, warm_ms});
    }
  }
  table.print(std::cout);
  std::cout << "rematch/cold matchings bitwise identical: "
            << (all_identical ? "yes (incremental path is semantics-free)"
                              : "NO (BUG)")
            << "\n\n";
}

/// One frozen churn scenario per n: the pre-churn solve, the mutated
/// instance, and the single-swap delta bridging them. Both benchmarks replay
/// the same scenario every iteration, so their proposal counters are exactly
/// reproducible across machines.
struct Scenario {
  KPartiteInstance inst;          // post-delta instance
  core::BindingResult previous;   // solved on the pre-delta instance
  incremental::MutationDelta delta;
};

Scenario make_scenario(Index n) {
  Rng rng(202);
  auto inst = gen::uniform(kGenders, n, rng);
  Scenario s{std::move(inst), {}, {}};
  s.previous = core::iterative_binding(s.inst, trees::path(kGenders), {});
  // One swap at the top of a proposer's list over a tree edge: the smallest
  // delta that still forces a warm continuation (not a pure replay).
  s.delta = incremental::swap_entries(s.inst, {0, n / 2}, 1, 0, 1);
  return s;
}

void bm_rematch_warm(benchmark::State& state) {
  const auto scenario = make_scenario(static_cast<Index>(state.range(0)));
  const auto tree = trees::path(kGenders);
  std::int64_t proposals = 0;
  for (auto _ : state) {
    const auto report = incremental::rematch(scenario.inst, tree,
                                             scenario.previous, scenario.delta);
    proposals += report.warm_executed_proposals;
    benchmark::DoNotOptimize(report.result.total_proposals);
  }
  state.counters["warm_proposals"] =
      benchmark::Counter(static_cast<double>(proposals),
                         benchmark::Counter::kAvgIterations);
}

void bm_resolve_cold(benchmark::State& state) {
  const auto scenario = make_scenario(static_cast<Index>(state.range(0)));
  const auto tree = trees::path(kGenders);
  std::int64_t proposals = 0;
  for (auto _ : state) {
    const auto cold = core::iterative_binding(scenario.inst, tree, {});
    proposals += cold.total_proposals;
    benchmark::DoNotOptimize(cold.total_proposals);
  }
  state.counters["cold_proposals"] =
      benchmark::Counter(static_cast<double>(proposals),
                         benchmark::Counter::kAvgIterations);
}

BENCHMARK(bm_rematch_warm)->Arg(64)->Arg(256)->Arg(1024);
BENCHMARK(bm_resolve_cold)->Arg(64)->Arg(256)->Arg(1024);

}  // namespace

KSTABLE_BENCH_MAIN(report)
