// E2 — Theorem 1 / Fig. 1 / §III.A: stable binary matching does not
// generalize beyond bipartite graphs.
//
// Paper claims regenerated:
//  * for every k > 2 there exist preference lists with a perfect binary
//    matching but no stable one (the pariah + top-choice-cycle construction);
//  * k = 2 is the exception (every bipartite instance is solvable);
//  * random (non-adversarial) k-partite instances also fail with noticeable
//    probability once k > 2 — stability is structurally fragile, not just
//    adversarially breakable.

#include "bench_common.hpp"

namespace {

using namespace kstable;

void report() {
  std::cout << "E2: Theorem 1 — (non-)existence of stable binary matching\n\n";

  TableWriter adv("Adversarial construction (20 seeds each; paper: never stable)",
                  {"k", "n", "perfect matching", "stable found", "expected"});
  for (const auto& [k, n] : std::vector<std::pair<Gender, Index>>{
           {3, 2}, {3, 4}, {3, 8}, {4, 2}, {4, 4}, {5, 2}, {6, 2}, {7, 2}}) {
    if ((static_cast<std::int64_t>(k) * n) % 2 != 0) continue;
    int stable = 0;
    int perfect = 0;
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
      Rng rng(seed * 977 + static_cast<std::uint64_t>(k) * 13 +
              static_cast<std::uint64_t>(n));
      const auto inst = core::theorem1_adversarial_roommates(k, n, rng);
      stable += rm::solve(inst).has_stable;
      perfect += analysis::binary_census(inst, 1).perfect_matchings > 0;
    }
    adv.add_row({std::int64_t{k}, std::int64_t{n},
                 std::string(perfect == 20 ? "20/20" : "BUG"),
                 std::int64_t{stable}, std::string("0")});
  }
  adv.print(std::cout);

  TableWriter rates(
      "Stable-rate of UNIFORM random instances (round-robin linearization, "
      "n=4, 100 seeds) — k=2 always stable, k>2 increasingly fragile",
      {"k", "stable rate %"});
  for (const Gender k : {2, 3, 4, 5, 6}) {
    int stable = 0;
    const int seeds = 100;
    for (std::uint64_t seed = 0; seed < seeds; ++seed) {
      Rng rng(seed * 31 + static_cast<std::uint64_t>(k));
      const auto inst = gen::uniform(k, 4, rng);
      stable +=
          rm::solve_kpartite_binary(inst, rm::Linearization::round_robin)
              .has_stable;
    }
    rates.add_row({std::int64_t{k}, 100.0 * stable / seeds});
  }
  rates.print(std::cout);

  // Oracle confirmation at the smallest size (exhaustive).
  Rng rng(7);
  const auto small = core::theorem1_adversarial_roommates(3, 2, rng);
  const auto census = analysis::binary_census(small);
  std::cout << "Oracle on the smallest adversarial case (k=3, n=2): "
            << census.perfect_matchings << " perfect matchings, "
            << census.stable_matchings << " stable (expected 0)\n\n";

  // The per-gender scaffold (gen::theorem1_adversarial) only guarantees the
  // construction inside each per-gender list; measure how often a round-robin
  // linearization still destroys stability.
  TableWriter scaffold(
      "Per-gender adversarial scaffold + round-robin linearization (50 seeds)",
      {"k", "n", "stable rate %"});
  for (const auto& [k, n] :
       std::vector<std::pair<Gender, Index>>{{3, 2}, {3, 4}, {4, 4}}) {
    int stable = 0;
    const int seeds = 50;
    for (std::uint64_t seed = 0; seed < seeds; ++seed) {
      Rng r(seed * 7 + static_cast<std::uint64_t>(k));
      const auto inst = gen::theorem1_adversarial(k, n, r);
      stable +=
          rm::solve_kpartite_binary(inst, rm::Linearization::round_robin)
              .has_stable;
    }
    scaffold.add_row({std::int64_t{k}, std::int64_t{n},
                      100.0 * stable / seeds});
  }
  scaffold.print(std::cout);
  std::cout << "(Contrast: the combined-model construction above is 0% by "
               "construction; the scaffold shows the linearization can "
               "partially defuse it.)\n\n";
}

void bm_adversarial_solve(benchmark::State& state) {
  const auto k = static_cast<Gender>(state.range(0));
  const auto n = static_cast<Index>(state.range(1));
  Rng rng(3);
  const auto inst = core::theorem1_adversarial_roommates(k, n, rng);
  for (auto _ : state) {
    const auto result = rm::solve(inst);
    benchmark::DoNotOptimize(result.has_stable);
  }
}
BENCHMARK(bm_adversarial_solve)
    ->Args({3, 16})
    ->Args({3, 64})
    ->Args({4, 16})
    ->Args({5, 16})
    ->Args({4, 64});

void bm_uniform_binary_solve(benchmark::State& state) {
  const auto k = static_cast<Gender>(state.range(0));
  Rng rng(4);
  const auto inst = gen::uniform(k, 32, rng);
  for (auto _ : state) {
    const auto result =
        rm::solve_kpartite_binary(inst, rm::Linearization::round_robin);
    benchmark::DoNotOptimize(result.has_stable);
  }
}
BENCHMARK(bm_uniform_binary_solve)->Arg(2)->Arg(3)->Arg(5);

}  // namespace

KSTABLE_BENCH_MAIN(report)
