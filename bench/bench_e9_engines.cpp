// E9 — §II.A / §IV.C: Gale-Shapley engine comparison and O(n²) scaling.
//
// Paper claims regenerated:
//  * GS runs in O(n²) accumulated proposals ("at most n² accumulative
//    proposals"); on uniform instances the average is ~ n·H(n);
//  * pairwise matching itself is hard to parallelize — the speculative
//    parallel engine matches the sequential outcome exactly (confluence) but
//    only wins at large n;
//  * ablation for the rank-table design decision: the round-based engine is
//    the paper's §II.A description, the queue engine the textbook form; both
//    count identical proposals.

#include <cmath>

#include "bench_common.hpp"

namespace {

using namespace kstable;

void report() {
  std::cout << "E9: GS engine comparison and O(n²) scaling\n\n";
  TableWriter table("Proposals vs n (uniform, seed 91; theory ~ n ln n avg, "
                    "bound n²)",
                    {"n", "proposals", "n ln n", "n^2", "rounds (round-engine)"});
  Rng rng(91);
  for (const Index n : {64, 256, 1024, 4096}) {
    const auto inst = gen::uniform(2, n, rng);
    const auto queue = gs::gale_shapley_queue(inst, 0, 1);
    const auto rounds = gs::gale_shapley_rounds(inst, 0, 1);
    table.add_row({std::int64_t{n}, queue.proposals,
                   static_cast<double>(n) * std::log(static_cast<double>(n)),
                   static_cast<std::int64_t>(n) * n, rounds.rounds});
  }
  table.print(std::cout);

  // Engine agreement spot check at n = 2048.
  const Index n = 2048;
  Rng rng2(92);
  const auto inst = gen::uniform(2, n, rng2);
  const auto queue = gs::gale_shapley_queue(inst, 0, 1);
  const auto round = gs::gale_shapley_rounds(inst, 0, 1);
  ThreadPool pool;
  const auto parallel = gs::gale_shapley_parallel(inst, 0, 1, pool);
  std::cout << "Engines agree at n=2048: "
            << ((queue.proposer_match == round.proposer_match &&
                 queue.proposer_match == parallel.proposer_match)
                    ? "yes (confluence)"
                    : "NO — bug!")
            << "\n\n";
}

void bm_engine_queue(benchmark::State& state) {
  const auto n = static_cast<Index>(state.range(0));
  Rng rng(93);
  const auto inst = gen::uniform(2, n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gs::gale_shapley_queue(inst, 0, 1).proposals);
  }
  state.SetComplexityN(n);
}
BENCHMARK(bm_engine_queue)->RangeMultiplier(2)->Range(256, 8192)->Complexity();

// Resilience-overhead ablation: the same queue engine with an attached (but
// unlimited) ExecControl. The delta vs bm_engine_queue is the full cost of
// deadline/cancellation support — one relaxed fetch_add plus one relaxed load
// per proposal, with the clock consulted every kClockStride units. Should be
// within noise of the unguarded run.
void bm_engine_queue_guarded(benchmark::State& state) {
  const auto n = static_cast<Index>(state.range(0));
  Rng rng(93);
  const auto inst = gen::uniform(2, n, rng);
  resilience::ExecControl control{
      resilience::Budget::deadline(3.6e6)};  // one hour: never trips
  gs::GsOptions options;
  options.control = &control;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        gs::gale_shapley_queue(inst, 0, 1, options).proposals);
  }
}
BENCHMARK(bm_engine_queue_guarded)->RangeMultiplier(2)->Range(256, 8192);

void bm_engine_rounds(benchmark::State& state) {
  const auto n = static_cast<Index>(state.range(0));
  Rng rng(93);
  const auto inst = gen::uniform(2, n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gs::gale_shapley_rounds(inst, 0, 1).proposals);
  }
}
BENCHMARK(bm_engine_rounds)->RangeMultiplier(2)->Range(256, 8192);

void bm_engine_parallel(benchmark::State& state) {
  const auto n = static_cast<Index>(state.range(0));
  Rng rng(93);
  const auto inst = gen::uniform(2, n, rng);
  ThreadPool pool;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        gs::gale_shapley_parallel(inst, 0, 1, pool).proposals);
  }
}
BENCHMARK(bm_engine_parallel)->RangeMultiplier(2)->Range(256, 8192);

// Ablation for DESIGN.md decision 1 (rank tables): same algorithm, but every
// responder comparison scans the preference list. The gap vs bm_engine_queue
// is the price of dropping the O(1) rank lookup.
void bm_engine_scan_ablation(benchmark::State& state) {
  const auto n = static_cast<Index>(state.range(0));
  Rng rng(93);
  const auto inst = gen::uniform(2, n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gs::gale_shapley_scan(inst, 0, 1).proposals);
  }
}
BENCHMARK(bm_engine_scan_ablation)->RangeMultiplier(4)->Range(256, 4096);

void bm_engine_master_list_worst_case(benchmark::State& state) {
  const auto n = static_cast<Index>(state.range(0));
  Rng rng(94);
  const auto inst = gen::master_list(2, n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gs::gale_shapley_queue(inst, 0, 1).proposals);
  }
}
BENCHMARK(bm_engine_master_list_worst_case)->Arg(1024)->Arg(4096);

}  // namespace

KSTABLE_BENCH_MAIN(report)
