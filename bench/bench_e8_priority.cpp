// E8 — §IV.D / Theorem 5 / Figs. 5-6: weakened blocking families and
// priority-based binding.
//
// Paper claims regenerated:
//  * there are (k-1)! priority-grown binding trees (Fig. 6), all bitonic;
//  * non-bitonic trees can admit weakened blocking families (Fig. 5a);
//  * Algorithm 2's construction prevents weakened blocking families.
//
// Documented deviation (see DESIGN.md): Theorem 5's literal claim — EVERY
// bitonic tree prevents weakened blocking — fails empirically: a singleton
// group led by a low-priority gender can be tree-adjacent only to non-leads
// of the other group, so no lead-lead blocking pair arises to contradict GS
// stability. The star at the highest-priority gender (Algorithm 2's literal
// "select i with the highest priority") IS provably safe; the table below
// quantifies all three tree classes.

#include "bench_common.hpp"

namespace {

using namespace kstable;

std::vector<std::int32_t> identity_priority(Gender k) {
  std::vector<std::int32_t> p(static_cast<std::size_t>(k));
  for (Gender g = 0; g < k; ++g) p[static_cast<std::size_t>(g)] = g;
  return p;
}

void report() {
  std::cout << "E8: priority-based binding and weakened stability (§IV.D)\n\n";

  TableWriter counts("Priority-grown tree counts (Fig. 6): (k-1)!, all bitonic",
                     {"k", "(k-1)!", "enumerated", "bitonic"});
  for (Gender k = 3; k <= 7; ++k) {
    std::int64_t enumerated = 0;
    std::int64_t bitonic = 0;
    core::for_each_priority_tree(k, {}, [&](const BindingStructure& tree) {
      ++enumerated;
      bitonic += sched::is_bitonic_tree(tree, identity_priority(k));
    });
    counts.add_row({std::int64_t{k}, core::priority_tree_count(k), enumerated,
                    bitonic});
  }
  counts.print(std::cout);

  // Weakened-violation rates by tree class (k = 4, n = 3, exact checker).
  const Gender k = 4;
  const Index n = 3;
  const auto priority = identity_priority(k);
  int star_checked = 0, star_blocked = 0;
  int bitonic_checked = 0, bitonic_blocked = 0;
  int nonbitonic_checked = 0, nonbitonic_blocked = 0;
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    Rng rng(seed * 131 + 5);
    const auto inst = gen::uniform(k, n, rng);
    prufer::enumerate_trees(k, [&](const BindingStructure& tree) {
      const auto result = core::iterative_binding(inst, tree);
      const bool blocked = analysis::find_weakened_blocking_family(
                               inst, result.matching(), priority)
                               .has_value();
      if (tree.degree(k - 1) == k - 1) {
        ++star_checked;
        star_blocked += blocked;
      } else if (sched::is_bitonic_tree(tree, priority)) {
        ++bitonic_checked;
        bitonic_blocked += blocked;
      } else {
        ++nonbitonic_checked;
        nonbitonic_blocked += blocked;
      }
    });
  }
  TableWriter rates(
      "Weakened-blocking rate by binding-tree class (k=4, n=3, 40 seeds x 16 "
      "trees, exact search)",
      {"tree class", "bindings checked", "blocked", "blocked %"});
  rates.add_row({std::string("star at imax (Algorithm 2 default)"),
                 std::int64_t{star_checked}, std::int64_t{star_blocked},
                 100.0 * star_blocked / std::max(star_checked, 1)});
  rates.add_row({std::string("bitonic, non-star (paper claims safe)"),
                 std::int64_t{bitonic_checked}, std::int64_t{bitonic_blocked},
                 100.0 * bitonic_blocked / std::max(bitonic_checked, 1)});
  rates.add_row({std::string("non-bitonic (paper's Fig. 5a class)"),
                 std::int64_t{nonbitonic_checked},
                 std::int64_t{nonbitonic_blocked},
                 100.0 * nonbitonic_blocked / std::max(nonbitonic_checked, 1)});
  rates.print(std::cout);
  std::cout << "Expected: star 0%; non-bitonic clearly > 0%. The middle row "
               "> 0% is the documented Theorem 5 deviation.\n\n";

  // Strict stability always holds regardless (Theorem 2 applies to any tree).
  int strict_blocked = 0;
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    Rng rng(seed * 17 + 3);
    const auto inst = gen::uniform(k, n, rng);
    const auto result = core::priority_binding(inst);
    strict_blocked += analysis::find_blocking_family(inst, result.binding.matching())
                          .has_value();
  }
  std::cout << "Strict blocking families after Algorithm 2 (40 seeds): "
            << strict_blocked << " (expected 0, Theorem 2)\n\n";
}

void bm_priority_binding(benchmark::State& state) {
  const auto k = static_cast<Gender>(state.range(0));
  const auto n = static_cast<Index>(state.range(1));
  Rng rng(81);
  const auto inst = gen::uniform(k, n, rng);
  for (auto _ : state) {
    const auto result = core::priority_binding(inst);
    benchmark::DoNotOptimize(result.binding.total_proposals);
  }
}
BENCHMARK(bm_priority_binding)->Args({4, 128})->Args({6, 128})->Args({8, 256});

void bm_weakened_exact_check(benchmark::State& state) {
  const auto n = static_cast<Index>(state.range(0));
  Rng rng(82);
  const auto inst = gen::uniform(4, n, rng);
  const auto result = core::priority_binding(inst);
  const auto priority = identity_priority(4);
  for (auto _ : state) {
    const auto witness = analysis::find_weakened_blocking_family(
        inst, result.binding.matching(), priority);
    benchmark::DoNotOptimize(witness.has_value());
  }
}
BENCHMARK(bm_weakened_exact_check)->Arg(3)->Arg(6)->Arg(10);

void bm_bitonic_check(benchmark::State& state) {
  const auto k = static_cast<Gender>(state.range(0));
  Rng rng(83);
  const auto tree = prufer::random_tree(k, rng);
  std::vector<std::int32_t> priority(static_cast<std::size_t>(k));
  for (Gender g = 0; g < k; ++g) priority[static_cast<std::size_t>(g)] = g;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched::is_bitonic_tree(tree, priority));
  }
}
BENCHMARK(bm_bitonic_check)->Arg(6)->Arg(12)->Arg(20);

}  // namespace

KSTABLE_BENCH_MAIN(report)
