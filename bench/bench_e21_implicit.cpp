// E21 — implicit preference backend: n >= 10^5 instances with O(n) memory
// via lazy rank evaluation (docs/PERFORMANCE.md §Implicit preferences).
//
// Claims regenerated:
//  * a generator-backed instance stores ZERO table bytes — pref_at/rank_of
//    are O(1) Feistel PRP evaluations — so uniform-random bipartite
//    instances at n = 10^5..2·10^5 solve in O(n) process memory, where the
//    explicit layout would need ~75-300 GiB of tables;
//  * the implicit and materialized-explicit solves are bitwise identical
//    (matching AND proposal count) across engines — the self-check line
//    below is grepped by CI;
//  * the per-proposal generator overhead vs hot explicit tables is a small
//    constant factor (pinned as a within-file time ratio by the
//    compare_bench gate, so it cannot silently blow up);
//  * at large n the mean proposer partner rank tracks ln n and the mean
//    responder partner rank tracks n/ln n (Mertens, cond-mat/0509221),
//    regenerated here and explorable via `kmatch mertens`.
//
// The n sweep is CI-safe by default only in the benchmark section; the
// report sweep reaches n = 2·10^5 (~minutes of proposals, still O(n)
// memory) and can be capped with KSTABLE_E21_MAX_N for smoke runs.

#include <cmath>
#include <cstdlib>
#include <string>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "bench_common.hpp"
#include "gs/scan_gs.hpp"

namespace {

using namespace kstable;

constexpr std::uint64_t kSeed = 0x5eedULL;

Index e21_max_n() {
  if (const char* env = std::getenv("KSTABLE_E21_MAX_N")) {
    const long long v = std::atoll(env);
    if (v >= 4096 && v <= 4'000'000) return static_cast<Index>(v);
  }
  return 200000;
}

/// Peak resident set of this process in MiB (getrusage; Linux reports KiB,
/// macOS bytes). 0.0 where unsupported.
double peak_rss_mib() {
#if defined(__unix__) || defined(__APPLE__)
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
#if defined(__APPLE__)
    return static_cast<double>(usage.ru_maxrss) / (1024.0 * 1024.0);
#else
    return static_cast<double>(usage.ru_maxrss) / 1024.0;
#endif
  }
#endif
  return 0.0;
}

KPartiteInstance implicit_uniform(Index n) {
  return KPartiteInstance::make_implicit(
      2, n, {prefs::imp::Family::uniform, kSeed});
}

/// Table bytes the explicit compact layout would need for the same k=2
/// instance: k·(k-1)·n² cells of prefs plus the same of ranks at the
/// width-adaptive entry size.
std::int64_t explicit_table_bytes(Index n) {
  const auto cells = 2LL * static_cast<std::int64_t>(n) *
                     static_cast<std::int64_t>(n);
  const auto width = prefs::natural_rank_width(n);
  return cells * static_cast<std::int64_t>(sizeof(Index) +
                                           prefs::rank_entry_bytes(width));
}

/// Mean rank each side holds of its partner in `result` (proposer side in
/// the proposers' own lists, responder side in the responders').
struct PartnerRanks {
  double proposer_mean = 0.0;
  double responder_mean = 0.0;
};
PartnerRanks partner_ranks(const KPartiteInstance& inst,
                           const gs::GsResult& result) {
  const Index n = inst.per_gender();
  double psum = 0.0;
  double rsum = 0.0;
  for (Index p = 0; p < n; ++p) {
    const Index r = result.proposer_match[static_cast<std::size_t>(p)];
    psum += inst.rank_of({0, p}, {1, r});
    rsum += inst.rank_of({1, r}, {0, p});
  }
  return {psum / static_cast<double>(n), rsum / static_cast<double>(n)};
}

void report() {
  const Index max_n = e21_max_n();
  std::cout << "E21: implicit preference backend — O(n)-memory large-n "
               "solves via lazy Feistel rank evaluation\n"
            << "(report sweep up to n = " << max_n
            << "; cap with KSTABLE_E21_MAX_N)\n\n";

  // --- implicit vs materialized tables at small n (where explicit fits) ---
  TableWriter duel("Implicit vs materialized explicit tables (k=2, uniform)",
                   {"n", "implicit ms", "explicit ms", "proposals",
                    "implicit bytes", "explicit bytes"});
  bool all_identical = true;
  for (const Index n : {512, 2048}) {
    const auto imp = implicit_uniform(n);
    const auto tables = imp.materialized();
    const auto a = gs::gale_shapley_queue(imp, 0, 1);
    const auto b = gs::gale_shapley_queue(tables, 0, 1);
    const auto c = gs::gale_shapley_prefetch(imp, 0, 1);
    const auto d = gs::gale_shapley_scan_simd(imp, 0, 1);
    all_identical = all_identical &&
                    a.proposer_match == b.proposer_match &&
                    a.responder_match == b.responder_match &&
                    a.proposals == b.proposals &&
                    c.proposer_match == b.proposer_match &&
                    c.proposals == b.proposals &&
                    d.proposer_match == b.proposer_match &&
                    d.proposals == b.proposals;
    duel.add_row({std::int64_t{n}, a.wall_ms, b.wall_ms, a.proposals,
                  static_cast<std::int64_t>(imp.pref_bytes() +
                                            imp.rank_bytes()),
                  static_cast<std::int64_t>(tables.pref_bytes() +
                                            tables.rank_bytes())});
  }
  duel.print(std::cout);
  std::cout << "implicit/explicit queue+prefetch+scan_simd outcomes bitwise "
               "identical: "
            << (all_identical ? "yes (backend is semantics-free)"
                              : "NO (BUG)")
            << "\n\n";

  // --- the large-n sweep explicit tables cannot reach -------------------
  TableWriter sweep(
      "Large-n implicit sweep (k=2, uniform; explicit shown as what tables "
      "WOULD cost)",
      {"n", "queue ms", "proposals", "props/(n ln n)", "explicit GiB",
       "peak RSS MiB"});
  Index last_n = 0;
  gs::GsResult last;
  for (Index n = 25000; n <= max_n; n *= 2) {
    const auto inst = implicit_uniform(n);
    const auto result = gs::gale_shapley_queue(inst, 0, 1);
    const double nlogn =
        static_cast<double>(n) * std::log(static_cast<double>(n));
    sweep.add_row({std::int64_t{n}, result.wall_ms, result.proposals,
                   static_cast<double>(result.proposals) / nlogn,
                   static_cast<double>(explicit_table_bytes(n)) /
                       (1024.0 * 1024.0 * 1024.0),
                   peak_rss_mib()});
    last_n = n;
    last = result;
  }
  sweep.print(std::cout);

  // --- Mertens asymptotics at the sweep's largest n ---------------------
  if (last_n > 0) {
    const auto inst = implicit_uniform(last_n);
    const auto ranks = partner_ranks(inst, last);
    const double ln_n = std::log(static_cast<double>(last_n));
    std::cout << "Mertens check at n = " << last_n
              << ": mean proposer partner rank = " << ranks.proposer_mean
              << " (" << ranks.proposer_mean / ln_n << "x ln n), "
              << "mean responder partner rank = " << ranks.responder_mean
              << " (" << ranks.responder_mean / (last_n / ln_n)
              << "x n/ln n) — see `kmatch mertens` for seed sweeps\n\n";
  }
}

/// Warm into-style solve loop (same discipline as E19): steady-state path,
/// no construction in the timed region.
template <typename Solve>
void run_warm(benchmark::State& state, const KPartiteInstance& inst,
              Solve&& solve) {
  gs::GsWorkspace workspace;
  gs::GsResult result;
  solve(inst, workspace, result);  // warm-up outside the timed region
  std::int64_t proposals = 0;
  for (auto _ : state) {
    solve(inst, workspace, result);
    proposals += result.proposals;
    benchmark::DoNotOptimize(result.proposer_match.data());
  }
  state.counters["proposals"] =
      benchmark::Counter(static_cast<double>(proposals),
                         benchmark::Counter::kAvgIterations);
  state.counters["table_mb"] = static_cast<double>(
      inst.pref_bytes() + inst.rank_bytes()) / (1024.0 * 1024.0);
  state.counters["peak_rss_mb"] = peak_rss_mib();
}

void bm_implicit_queue(benchmark::State& state) {
  const auto inst = implicit_uniform(static_cast<Index>(state.range(0)));
  run_warm(state, inst, [](const auto& in, auto& w, auto& r) {
    gs::gale_shapley_queue(in, 0, 1, {}, w, r);
  });
}
// The 100000 row is the ROADMAP's n >= 10^5 acceptance point: its proposal
// counter is gated exactly and its peak_rss_mb counter documents the O(n)
// footprint in the committed BENCH_E21.json (explicit tables would need
// ~150 GiB there).
BENCHMARK(bm_implicit_queue)->Arg(1024)->Arg(8192)->Arg(32768)->Arg(100000);

void bm_implicit_prefetch(benchmark::State& state) {
  const auto inst = implicit_uniform(static_cast<Index>(state.range(0)));
  run_warm(state, inst, [](const auto& in, auto& w, auto& r) {
    gs::gale_shapley_prefetch(in, 0, 1, {}, w, r);
  });
}
BENCHMARK(bm_implicit_prefetch)->Arg(1024)->Arg(8192)->Arg(32768)
    ->Arg(100000);

/// Explicit twin: the SAME instances materialized, so the proposal counters
/// match bm_implicit_queue row for row (gated exactly) and the within-file
/// implicit/explicit time ratio is the generator's true overhead factor.
void bm_explicit_queue(benchmark::State& state) {
  const auto inst =
      implicit_uniform(static_cast<Index>(state.range(0))).materialized();
  run_warm(state, inst, [](const auto& in, auto& w, auto& r) {
    gs::gale_shapley_queue(in, 0, 1, {}, w, r);
  });
}
// Capped at 8192: the 32768 twin alone would materialize ~13 GiB of tables,
// which is exactly the wall the implicit backend exists to remove (and more
// than CI runners have).
BENCHMARK(bm_explicit_queue)->Arg(1024)->Arg(8192);

}  // namespace

int main(int argc, char** argv) {
  if (::kstable::benchsupport::refuse_non_release_export(argc, argv)) {
    return 2;
  }
  // This binary benches generator-backed instances (plus their materialized
  // twins); stamp the context so compare_bench.py refuses cross-backend
  // baseline comparisons.
  ::kstable::benchsupport::set_pref_backend("implicit");
  report();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::kstable::benchsupport::attach_metrics_context();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
