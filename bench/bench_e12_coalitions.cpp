// E12 — §VII future work: k-ary matching in k'-partite graphs (ck = nk') via
// super-gender coalitions.
//
// Regenerated series (our formalization; the paper only states the target):
//  * coalition counts satisfy the paper's ck = nk' constraint for several
//    (k', c) decompositions;
//  * the coalitions are stable w.r.t. the linearized (derived) preferences
//    — Theorem 2 carried over to the derived instance;
//  * cost comparison across partitions and linearizations: how the grouping
//    decision shapes coalition quality.

#include "bench_common.hpp"

namespace {

using namespace kstable;

void report() {
  std::cout << "E12: super-gender coalitions — k-ary matching in k'-partite "
               "graphs\n\n";

  TableWriter sizes("Decompositions of a k'=6, n=4 instance (ck = nk' = 24)",
                    {"group size c", "super-genders k", "coalitions", "members "
                     "per coalition", "stable (derived)"});
  Rng rng(121);
  const auto inst = gen::uniform(6, 4, rng);
  for (const Gender c : {1, 2, 3}) {
    const auto partition = core::SupergenderPartition::contiguous(6, c);
    const auto result = core::coalition_binding(
        inst, partition, rm::Linearization::round_robin);
    const bool blocked =
        analysis::find_blocking_family_pairs(result.system.derived,
                                             result.binding.matching(),
                                             analysis::BlockingMode::strict)
            .has_value();
    sizes.add_row({std::int64_t{c},
                   std::int64_t{result.system.derived.genders()},
                   static_cast<std::int64_t>(result.coalitions.size()),
                   static_cast<std::int64_t>(result.coalitions.front().members.size()),
                   std::string(blocked ? "NO (bug!)" : "yes")});
  }
  sizes.print(std::cout);

  TableWriter quality(
      "Coalition quality by linearization (k'=6, c=2, n=16, derived-instance "
      "costs, 10 seeds avg)",
      {"linearization", "total cost", "regret"});
  for (const auto& [name, lin] :
       std::vector<std::pair<std::string, rm::Linearization>>{
           {"round robin", rm::Linearization::round_robin},
           {"gender blocks", rm::Linearization::gender_blocks}}) {
    double cost = 0, regret = 0;
    const int seeds = 10;
    for (int seed = 0; seed < seeds; ++seed) {
      Rng r(static_cast<std::uint64_t>(seed) * 37 + 5);
      const auto instance = gen::uniform(6, 16, r);
      const auto result = core::coalition_binding(
          instance, core::SupergenderPartition::contiguous(6, 2), lin);
      const auto costs = analysis::kary_costs(result.system.derived,
                                              result.binding.matching());
      cost += static_cast<double>(costs.total_cost);
      regret += costs.regret;
    }
    quality.add_row({name, cost / seeds, regret / seeds});
  }
  quality.print(std::cout);
}

void bm_derive_system(benchmark::State& state) {
  const auto n = static_cast<Index>(state.range(0));
  Rng rng(122);
  const auto inst = gen::uniform(6, n, rng);
  const auto partition = core::SupergenderPartition::contiguous(6, 2);
  for (auto _ : state) {
    const auto system = core::derive_supergender_system(
        inst, partition, rm::Linearization::round_robin);
    benchmark::DoNotOptimize(system.derived.total_members());
  }
}
BENCHMARK(bm_derive_system)->Arg(16)->Arg(64)->Unit(benchmark::kMicrosecond);

void bm_coalition_binding(benchmark::State& state) {
  const auto n = static_cast<Index>(state.range(0));
  Rng rng(123);
  const auto inst = gen::uniform(6, n, rng);
  const auto partition = core::SupergenderPartition::contiguous(6, 3);
  for (auto _ : state) {
    const auto result = core::coalition_binding(
        inst, partition, rm::Linearization::round_robin);
    benchmark::DoNotOptimize(result.coalitions.size());
  }
}
BENCHMARK(bm_coalition_binding)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

KSTABLE_BENCH_MAIN(report)
