// E15 — §IV.B ablation: does the choice among the k^(k-2) binding trees
// matter, and can it be optimized?
//
// The paper observes that different binding trees generate different stable
// k-ary matchings but leaves tree choice open. This ablation compares path /
// star / random / cost-aware (Kruskal over per-pair GS probe costs) trees on
// bound-pair cost, all-pairs cost, and regret, across preference families
// (uniform / popularity-correlated / euclidean / tiered). The probe phase
// doubles the proposal budget — the table reports that overhead too.

#include <algorithm>

#include "bench_common.hpp"

#include "core/gs_cache.hpp"
#include "core/oriented_binding.hpp"
#include "core/tree_selection.hpp"
#include "graph/prufer.hpp"
#include "resilience/fault_injection.hpp"
#include "resilience/solve_ladder.hpp"

namespace {

using namespace kstable;

void report() {
  std::cout << "E15: binding-tree selection ablation (§IV.B)\n\n";

  const Gender k = 6;
  const Index n = 64;
  const int seeds = 10;

  for (const auto& [family, make] :
       std::vector<std::pair<std::string,
                             KPartiteInstance (*)(Gender, Index, Rng&)>>{
           {"uniform",
            +[](Gender kk, Index nn, Rng& r) { return gen::uniform(kk, nn, r); }},
           {"popularity(0.5)",
            +[](Gender kk, Index nn, Rng& r) {
              return gen::popularity(kk, nn, r, 0.5);
            }},
           {"euclidean(2d)",
            +[](Gender kk, Index nn, Rng& r) {
              return gen::euclidean(kk, nn, 2, r);
            }},
           {"tiered(4)",
            +[](Gender kk, Index nn, Rng& r) {
              return gen::tiered(kk, nn, 4, r);
            }}}) {
    TableWriter table("Tree ablation on " + family + " preferences (k=6, "
                          "n=64, 10 seeds avg)",
                      {"tree", "bound-pair cost", "all-pairs cost", "regret",
                       "proposals"});
    struct Acc {
      double bound = 0, all = 0, regret = 0, proposals = 0;
    };
    Acc path_acc, star_acc, random_acc, min_acc, max_acc;
    for (int seed = 0; seed < seeds; ++seed) {
      Rng rng(static_cast<std::uint64_t>(seed) * 389 + 7);
      const auto inst = make(k, n, rng);
      auto run = [&](Acc& acc, const BindingStructure& tree,
                     std::int64_t extra_proposals) {
        const auto result = core::iterative_binding(inst, tree);
        acc.bound += static_cast<double>(
            analysis::kary_tree_costs(inst, result.matching(), tree).total_cost);
        const auto all = analysis::kary_costs(inst, result.matching());
        acc.all += static_cast<double>(all.total_cost);
        acc.regret += all.regret;
        acc.proposals +=
            static_cast<double>(result.total_proposals + extra_proposals);
      };
      run(path_acc, trees::path(k), 0);
      run(star_acc, trees::star(k, 0), 0);
      Rng tree_rng(static_cast<std::uint64_t>(seed) + 1);
      run(random_acc, prufer::random_tree(k, tree_rng), 0);
      // Cost-aware trees pay for the probes: k(k-1)/2 GS runs.
      const auto probes = core::probe_all_pairs(inst);
      std::int64_t probe_cost = 0;
      for (const auto& probe : probes) probe_cost += probe.proposals;
      run(min_acc, core::select_tree(inst, core::TreeObjective::min_cost),
          probe_cost);
      run(max_acc, core::select_tree(inst, core::TreeObjective::max_cost),
          probe_cost);
    }
    auto row = [&](const char* name, const Acc& acc) {
      table.add_row({std::string(name), acc.bound / seeds, acc.all / seeds,
                     acc.regret / seeds, acc.proposals / seeds});
    };
    row("path", path_acc);
    row("star(0)", star_acc);
    row("random", random_acc);
    row("cost-aware min", min_acc);
    row("cost-aware max (control)", max_acc);
    table.print(std::cout);
  }
  std::cout << "Reading: 'bound-pair cost' is what binding optimizes; "
               "'all-pairs cost' includes the unbound cross pairs that no "
               "tree controls.\n\n";

  // Orientation ablation: each binding edge has a proposer and a responder
  // ("a proposer (a man in the G-S algorithm) to a responder (a woman)",
  // §IV.B) — GS favors the proposer, so edge orientation shifts cost between
  // genders even on the same tree.
  TableWriter orient("Edge-orientation ablation on the path tree (k=4, n=64, "
                     "uniform, 10 seeds avg of per-gender costs)",
                     {"orientation", "g0 cost", "g1 cost", "g2 cost",
                      "g3 cost"});
  std::vector<double> fwd(4, 0.0), rev(4, 0.0);
  for (int seed = 0; seed < seeds; ++seed) {
    Rng rng(static_cast<std::uint64_t>(seed) * 911 + 3);
    const auto inst = gen::uniform(4, n, rng);
    BindingStructure forward(4);   // lower gender proposes
    BindingStructure backward(4);  // higher gender proposes
    for (Gender g = 0; g + 1 < 4; ++g) {
      forward.add_edge({g, static_cast<Gender>(g + 1)});
      backward.add_edge({static_cast<Gender>(g + 1), g});
    }
    const auto f = core::iterative_binding(inst, forward);
    const auto b = core::iterative_binding(inst, backward);
    const auto fc = analysis::kary_tree_costs(inst, f.matching(), forward);
    const auto bc = analysis::kary_tree_costs(inst, b.matching(), backward);
    for (Gender g = 0; g < 4; ++g) {
      fwd[static_cast<std::size_t>(g)] +=
          static_cast<double>(fc.per_gender_cost[static_cast<std::size_t>(g)]);
      rev[static_cast<std::size_t>(g)] +=
          static_cast<double>(bc.per_gender_cost[static_cast<std::size_t>(g)]);
    }
  }
  orient.add_row({std::string("low gender proposes"), fwd[0] / seeds,
                  fwd[1] / seeds, fwd[2] / seeds, fwd[3] / seeds});
  orient.add_row({std::string("high gender proposes"), rev[0] / seeds,
                  rev[1] / seeds, rev[2] / seeds, rev[3] / seeds});
  orient.print(std::cout);
  std::cout << "Shape: the proposer side of each edge is happier (lower "
               "cost); flipping orientations flips the asymmetry.\n\n";

  // Orientation POLICIES: can choosing proposers dynamically even out the
  // per-gender costs? (core::oriented_binding)
  TableWriter policies("Orientation policies on the star tree (k=6, n=64, "
                       "uniform, 10 seeds avg; star center proposes "
                       "everywhere under 'as given')",
                       {"policy", "max gender cost", "min gender cost",
                        "spread"});
  double fixed_hi = 0, fixed_lo = 0, rev_hi = 0, rev_lo = 0, alt_hi = 0,
         alt_lo = 0, bal_hi = 0, bal_lo = 0;
  // Reversed star: every leaf proposes to the center.
  BindingStructure reversed_star(6);
  for (Gender g = 1; g < 6; ++g) reversed_star.add_edge({g, 0});
  for (int seed = 0; seed < seeds; ++seed) {
    Rng rng(static_cast<std::uint64_t>(seed) * 613 + 29);
    const auto inst = gen::uniform(6, 64, rng);
    auto run = [&](const BindingStructure& tree,
                   core::OrientationPolicy policy, double& hi, double& lo) {
      const auto result = core::oriented_binding(inst, tree, policy);
      const auto [mn, mx] = std::minmax_element(result.gender_cost.begin(),
                                                result.gender_cost.end());
      hi += static_cast<double>(*mx);
      lo += static_cast<double>(*mn);
    };
    run(trees::star(6, 0), core::OrientationPolicy::as_given, fixed_hi,
        fixed_lo);
    run(reversed_star, core::OrientationPolicy::as_given, rev_hi, rev_lo);
    run(trees::star(6, 0), core::OrientationPolicy::alternate, alt_hi, alt_lo);
    // balance_greedy repairs even the bad starting orientation.
    run(reversed_star, core::OrientationPolicy::balance_greedy, bal_hi,
        bal_lo);
  }
  policies.add_row({std::string("center proposes (as given)"),
                    fixed_hi / seeds, fixed_lo / seeds,
                    (fixed_hi - fixed_lo) / seeds});
  policies.add_row({std::string("leaves propose (reversed)"), rev_hi / seeds,
                    rev_lo / seeds, (rev_hi - rev_lo) / seeds});
  policies.add_row({std::string("alternate"), alt_hi / seeds, alt_lo / seeds,
                    (alt_hi - alt_lo) / seeds});
  policies.add_row({std::string("balance greedy (from reversed)"),
                    bal_hi / seeds, bal_lo / seeds,
                    (bal_hi - bal_lo) / seeds});
  policies.print(std::cout);
  std::cout << '\n';

  // Cache ablation: sweeping all k^(k-2) binding trees re-solves the same
  // oriented edges over and over — GS confluence makes each per-edge result a
  // pure function of (instance, oriented edge, engine), so core::GsEdgeCache
  // collapses the sweep to at most k(k-1) fresh GS runs. executed_proposals
  // counts fresh work only; total_proposals keeps the Theorem 3 semantic sum
  // either way.
  {
    const Gender ck = 5;
    Rng rng(7309);
    const auto inst = gen::uniform(ck, 64, rng);
    // The all-trees sweep is the TreeSweep engine's job now (E18 measures its
    // parallel scaling); running it poolless here isolates the cache effect.
    core::TreeSweepOptions sweep_options;
    sweep_options.fold = core::SweepFold::score_table;
    sweep_options.keep_matchings = true;
    const auto off = core::sweep_all_trees(inst, sweep_options);
    core::GsEdgeCache cache(ck);
    sweep_options.cache = &cache;
    const auto on = core::sweep_all_trees(inst, sweep_options);
    const std::int64_t trees_swept = off.stats.trees;
    const std::int64_t executed_off = off.stats.executed_proposals;
    const std::int64_t executed_on = on.stats.executed_proposals;
    const std::int64_t total_either = off.stats.total_proposals;
    bool identical = off.per_tree.size() == on.per_tree.size();
    for (std::size_t i = 0; identical && i < off.per_tree.size(); ++i) {
      identical = *off.per_tree[i].matching == *on.per_tree[i].matching &&
                  off.per_tree[i].total_proposals ==
                      on.per_tree[i].total_proposals;
    }
    const auto stats = cache.stats();
    TableWriter ablation("Edge-cache ablation: all k^(k-2) trees (k=5, n=64, "
                         "uniform)",
                         {"cache", "trees", "executed proposals",
                          "fresh GS runs", "cache hits"});
    ablation.add_row({std::string("off"),
                      static_cast<double>(trees_swept),
                      static_cast<double>(executed_off),
                      static_cast<double>(trees_swept) * (ck - 1), 0.0});
    ablation.add_row({std::string("on"),
                      static_cast<double>(trees_swept),
                      static_cast<double>(executed_on),
                      static_cast<double>(stats.misses),
                      static_cast<double>(stats.hits)});
    ablation.print(std::cout);
    std::cout << "Matchings bitwise-identical cache-on vs cache-off: "
              << (identical ? "yes" : "NO (BUG)")
              << "; executed-proposal reduction: "
              << static_cast<double>(executed_off) /
                     static_cast<double>(std::max<std::int64_t>(executed_on, 1))
              << "x (acceptance floor: 5x); semantic Theorem 3 sum unchanged "
              << "at " << total_either << ".\n\n";
  }

  // Cache x resilience ladder: retries after injected faults re-bind edges
  // the aborted attempts already completed. Fault hits are counted before
  // run_binding, so the retry path is identical with and without the cache —
  // only the executed work changes.
  {
    const Gender ck = 5;
    Rng rng(7411);
    const auto inst = gen::uniform(ck, 64, rng);
    resilience::FaultConfig config;
    config.fire_after = 1;
    config.probability = 1.0;
    config.max_fires = 2;
    resilience::FallbackOptions ladder;
    ladder.max_tree_attempts = 4;

    auto run_ladder = [&](core::GsEdgeCache* cache) {
      ladder.cache = cache;
      resilience::ScopedFault fault("core/binding_edge", config);
      return resilience::solve_with_fallback(inst, ladder);
    };
    const auto uncached = run_ladder(nullptr);
    core::GsEdgeCache cache(ck);
    const auto cold = run_ladder(&cache);   // first request warms the cache
    const auto warm = run_ladder(&cache);   // retried request replays it

    TableWriter fallback("Edge-cache x solve_with_fallback (k=5, n=64, "
                         "fault core/binding_edge fires on hits 2 and 4)",
                         {"run", "attempts", "executed proposals",
                          "cache hits", "same matching"});
    auto row = [&](const char* name, const resilience::FallbackReport& r) {
      fallback.add_row(
          {std::string(name), static_cast<double>(r.attempts.size()),
           static_cast<double>(r.executed_proposals),
           static_cast<double>(r.cache_hits),
           std::string(r.succeeded && uncached.succeeded &&
                               r.matching() == uncached.matching()
                           ? "yes"
                           : "NO")});
    };
    row("cache off", uncached);
    row("cache on, cold", cold);
    row("cache on, warm (request retried)", warm);
    fallback.print(std::cout);
    std::cout << "Cache hits are never charged against ExecControl budgets, "
                 "so deadline-bound retries get completed edges for free.\n";
  }
}

// Registered twins of the report's cache ablation so BENCH_e15.json records
// the numbers: range(0) = 1 with cache, 0 without.
void bm_multi_tree_sweep(benchmark::State& state) {
  const bool use_cache = state.range(0) != 0;
  const Gender k = 5;
  Rng rng(7309);
  const auto inst = gen::uniform(k, 64, rng);
  std::int64_t executed = 0;
  for (auto _ : state) {
    core::GsEdgeCache cache(k);
    core::BindingOptions options;
    if (use_cache) options.cache = &cache;
    std::int64_t acc = 0;
    prufer::enumerate_trees(k, [&](const BindingStructure& tree) {
      const auto result = core::iterative_binding(inst, tree, options);
      acc += result.executed_proposals;
      benchmark::DoNotOptimize(result.total_proposals);
    });
    executed = acc;
  }
  state.counters["accumulated_executed_proposals"] =
      static_cast<double>(executed);
  state.counters["trees"] = static_cast<double>(prufer::cayley_count(k));
}
BENCHMARK(bm_multi_tree_sweep)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void bm_ladder_with_faults(benchmark::State& state) {
  const bool use_cache = state.range(0) != 0;
  const Gender k = 5;
  Rng rng(7411);
  const auto inst = gen::uniform(k, 64, rng);
  resilience::FaultConfig config;
  config.fire_after = 1;
  config.probability = 1.0;
  config.max_fires = 2;
  std::int64_t executed = 0;
  for (auto _ : state) {
    core::GsEdgeCache cache(k);
    resilience::FallbackOptions ladder;
    ladder.max_tree_attempts = 4;
    if (use_cache) ladder.cache = &cache;
    resilience::ScopedFault fault("core/binding_edge", config);
    const auto report = resilience::solve_with_fallback(inst, ladder);
    executed = report.executed_proposals;
    benchmark::DoNotOptimize(report.succeeded);
  }
  state.counters["executed_proposals"] = static_cast<double>(executed);
}
BENCHMARK(bm_ladder_with_faults)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

void bm_probe_all_pairs(benchmark::State& state) {
  const auto k = static_cast<Gender>(state.range(0));
  Rng rng(151);
  const auto inst = gen::uniform(k, 64, rng);
  for (auto _ : state) {
    const auto probes = core::probe_all_pairs(inst);
    benchmark::DoNotOptimize(probes.size());
  }
}
BENCHMARK(bm_probe_all_pairs)->Arg(4)->Arg(8)->Unit(benchmark::kMicrosecond);

void bm_cost_aware_binding(benchmark::State& state) {
  const auto n = static_cast<Index>(state.range(0));
  Rng rng(152);
  const auto inst = gen::uniform(6, n, rng);
  for (auto _ : state) {
    const auto result =
        core::cost_aware_binding(inst, core::TreeObjective::min_cost);
    benchmark::DoNotOptimize(result.total_proposals);
  }
}
BENCHMARK(bm_cost_aware_binding)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMicrosecond);

void bm_generator_euclidean(benchmark::State& state) {
  const auto n = static_cast<Index>(state.range(0));
  Rng rng(153);
  for (auto _ : state) {
    const auto inst = gen::euclidean(4, n, 2, rng);
    benchmark::DoNotOptimize(inst.total_members());
  }
}
BENCHMARK(bm_generator_euclidean)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

KSTABLE_BENCH_MAIN(report)
