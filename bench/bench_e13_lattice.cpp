// E13 — §III.B extension: the stable-matching lattice, exactly.
//
// The paper's fairness procedure picks one stable matching procedurally; this
// experiment enumerates the whole lattice and reports:
//  * how many stable matchings random SMP instances have as n grows;
//  * how close the §III.B alternating heuristic gets to the exact
//    sex-equality optimum (and what man/woman-optimal extremes look like);
//  * the egalitarian and minimum-regret optima for context.

#include "bench_common.hpp"

namespace {

using namespace kstable;

void report() {
  std::cout << "E13: the SMP stable-matching lattice (exact §III.B fairness)\n\n";

  TableWriter counts("Number of stable matchings (uniform instances, 30 seeds)",
                     {"n", "mean", "max"});
  for (const Index n : {4, 8, 16, 32, 64}) {
    double total = 0;
    std::int64_t max_count = 0;
    const int seeds = 30;
    for (int seed = 0; seed < seeds; ++seed) {
      Rng rng(static_cast<std::uint64_t>(seed) * 131 + n);
      const auto inst = gen::uniform(2, n, rng);
      const auto lattice = rm::enumerate_stable_matchings(inst, 0, 1);
      total += static_cast<double>(lattice.matchings.size());
      max_count = std::max(max_count,
                           static_cast<std::int64_t>(lattice.matchings.size()));
    }
    counts.add_row({std::int64_t{n}, total / seeds, max_count});
  }
  counts.print(std::cout);

  TableWriter fairness(
      "Sex-equality: GS extremes vs §III.B alternate heuristic vs exact "
      "optimum (n=32, 20 seeds avg)",
      {"matching", "sex-equality cost"});
  Rng rng(132);
  const Index n = 32;
  const int trials = 20;
  double man_cost = 0, alt_cost = 0, exact_cost = 0, egal_cost = 0;
  for (int t = 0; t < trials; ++t) {
    const auto inst = gen::uniform(2, n, rng);
    const auto lattice = rm::enumerate_stable_matchings(inst, 0, 1);
    const auto gs_result = gs::gale_shapley_queue(inst, 0, 1);
    man_cost += static_cast<double>(
        analysis::bipartite_costs(inst, 0, 1, gs_result.proposer_match)
            .sex_equality());
    const auto fair = rm::solve_fair_smp(inst, 0, 1, rm::FairPolicy::alternate);
    alt_cost += static_cast<double>(
        analysis::bipartite_costs(inst, 0, 1, fair.man_match).sex_equality());
    exact_cost += static_cast<double>(
        rm::sex_equal_optimal(inst, 0, 1, lattice).value);
    egal_cost += static_cast<double>(
        analysis::bipartite_costs(
            inst, 0, 1, rm::egalitarian_optimal(inst, 0, 1, lattice).man_match)
            .sex_equality());
  }
  fairness.add_row({std::string("man-optimal (GS)"), man_cost / trials});
  fairness.add_row(
      {std::string("alternate heuristic (§III.B)"), alt_cost / trials});
  fairness.add_row(
      {std::string("egalitarian-optimal (context)"), egal_cost / trials});
  fairness.add_row({std::string("sex-equal optimum (exact)"),
                    exact_cost / trials});
  fairness.print(std::cout);
  std::cout << "Expected ordering: GS >> alternate heuristic >= exact "
               "optimum.\n\n";
}

void bm_enumerate_lattice(benchmark::State& state) {
  const auto n = static_cast<Index>(state.range(0));
  Rng rng(133);
  const auto inst = gen::uniform(2, n, rng);
  for (auto _ : state) {
    const auto lattice = rm::enumerate_stable_matchings(inst, 0, 1);
    benchmark::DoNotOptimize(lattice.matchings.size());
  }
}
BENCHMARK(bm_enumerate_lattice)->Arg(16)->Arg(64)->Arg(128)
    ->Unit(benchmark::kMicrosecond);

void bm_exact_sex_equal(benchmark::State& state) {
  const auto n = static_cast<Index>(state.range(0));
  Rng rng(134);
  const auto inst = gen::uniform(2, n, rng);
  for (auto _ : state) {
    const auto lattice = rm::enumerate_stable_matchings(inst, 0, 1);
    const auto pick = rm::sex_equal_optimal(inst, 0, 1, lattice);
    benchmark::DoNotOptimize(pick.value);
  }
}
BENCHMARK(bm_exact_sex_equal)->Arg(32)->Arg(64)->Unit(benchmark::kMicrosecond);

}  // namespace

KSTABLE_BENCH_MAIN(report)
