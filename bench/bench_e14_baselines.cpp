// E14 — §I / §V.A: prior-work baselines vs the paper's model.
//
// The paper motivates its per-gender binary preference model by the
// NP-completeness of earlier multi-dimensional formulations (combination and
// cyclic preferences) and cites the hospitals/residents problem as the
// classic many-to-one extension. This experiment puts numbers on the
// contrast:
//  * cyclic 3DSM: exhaustive search cost explodes (n!² matchings) and the
//    blocking-repair heuristic has no guarantee, while Algorithm 1 is
//    guaranteed stable in O((k-1)n²) proposals — the "who wins" claim of the
//    paper's modeling choice;
//  * hospitals/residents: deferred acceptance scales like GS, showing the
//    binary machinery extends smoothly to many-to-one markets.

#include "bench_common.hpp"

#include "core/cyclic3dsm.hpp"
#include "gs/hospitals.hpp"

namespace {

using namespace kstable;

void report() {
  std::cout << "E14: prior-model baselines (cyclic 3DSM, hospitals/residents)\n\n";

  TableWriter cyclic("Cyclic 3DSM vs Algorithm 1 on the same tripartite "
                     "instances (20 seeds)",
                     {"n", "c3d exhaustive found %", "c3d repair converged %",
                      "repairs avg", "Algorithm 1 stable %", "A1 proposals avg"});
  for (const Index n : {3, 4, 8, 16, 32}) {
    int exhaustive_found = 0;
    int exhaustive_tried = 0;
    int converged = 0;
    double repairs = 0;
    int binding_stable = 0;
    double proposals = 0;
    const int seeds = 20;
    for (int seed = 0; seed < seeds; ++seed) {
      Rng rng(static_cast<std::uint64_t>(seed) * 241 + n);
      const auto inst = gen::uniform(3, n, rng);
      if (n <= 4) {
        ++exhaustive_tried;
        exhaustive_found += c3d::find_stable_exhaustive(inst).has_value();
      }
      const auto ls = c3d::local_search(inst, 200 * n);
      converged += ls.converged;
      repairs += static_cast<double>(ls.repairs);
      const auto binding = core::iterative_binding(inst, trees::path(3));
      proposals += static_cast<double>(binding.total_proposals);
      binding_stable += !analysis::find_blocking_family_pairs(
                             inst, binding.matching(),
                             analysis::BlockingMode::strict)
                             .has_value();
    }
    cyclic.add_row(
        {std::int64_t{n},
         exhaustive_tried == 0
             ? std::string("(skipped)")
             : format_double(100.0 * exhaustive_found / exhaustive_tried, 1),
         100.0 * converged / seeds, repairs / seeds,
         100.0 * binding_stable / seeds, proposals / seeds});
  }
  cyclic.print(std::cout);
  std::cout << "Shape: Algorithm 1 is always stable with ~2·n·ln n proposals; "
               "the cyclic model needs exhaustive search (tiny n only) or an "
               "unguaranteed repair loop.\n\n";

  TableWriter hospitals("Hospitals/residents deferred acceptance (20 seeds)",
                        {"residents", "hospitals", "proposals avg",
                         "stable %", "assigned %"});
  for (const auto& [n, m] : std::vector<std::pair<hr::Resident, hr::Hospital>>{
           {64, 8}, {256, 16}, {1024, 32}}) {
    double proposals = 0;
    int stable = 0;
    double assigned = 0;
    const int seeds = 20;
    for (int seed = 0; seed < seeds; ++seed) {
      Rng rng(static_cast<std::uint64_t>(seed) * 307 + static_cast<std::uint64_t>(n));
      const auto inst = hr::random_instance(n, m, 1 + n / m, rng);
      const auto result = hr::solve_residents_propose(inst);
      proposals += static_cast<double>(result.proposals);
      stable += hr::is_stable(inst, result);
      int count = 0;
      for (const auto h : result.assignment) count += (h >= 0);
      assigned += 100.0 * count / n;
    }
    hospitals.add_row({std::int64_t{n}, std::int64_t{m}, proposals / seeds,
                       100.0 * stable / seeds, assigned / seeds});
  }
  hospitals.print(std::cout);
}

void bm_c3d_exhaustive(benchmark::State& state) {
  const auto n = static_cast<Index>(state.range(0));
  Rng rng(141);
  const auto inst = gen::uniform(3, n, rng);
  for (auto _ : state) {
    const auto witness = c3d::find_stable_exhaustive(inst);
    benchmark::DoNotOptimize(witness.has_value());
  }
}
BENCHMARK(bm_c3d_exhaustive)->Arg(3)->Arg(4)->Arg(5);

void bm_c3d_local_search(benchmark::State& state) {
  const auto n = static_cast<Index>(state.range(0));
  Rng rng(142);
  const auto inst = gen::uniform(3, n, rng);
  for (auto _ : state) {
    const auto result = c3d::local_search(inst, 200 * n);
    benchmark::DoNotOptimize(result.converged);
  }
}
BENCHMARK(bm_c3d_local_search)->Arg(8)->Arg(32)->Unit(benchmark::kMicrosecond);

void bm_binding_same_instance(benchmark::State& state) {
  const auto n = static_cast<Index>(state.range(0));
  Rng rng(142);
  const auto inst = gen::uniform(3, n, rng);
  for (auto _ : state) {
    const auto result = core::iterative_binding(inst, trees::path(3));
    benchmark::DoNotOptimize(result.total_proposals);
  }
}
BENCHMARK(bm_binding_same_instance)->Arg(8)->Arg(32)
    ->Unit(benchmark::kMicrosecond);

void bm_hospitals(benchmark::State& state) {
  const auto n = static_cast<hr::Resident>(state.range(0));
  Rng rng(143);
  const auto inst = hr::random_instance(n, 16, 1 + n / 16, rng);
  for (auto _ : state) {
    const auto result = hr::solve_residents_propose(inst);
    benchmark::DoNotOptimize(result.proposals);
  }
}
BENCHMARK(bm_hospitals)->Arg(256)->Arg(1024)->Arg(4096)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

KSTABLE_BENCH_MAIN(report)
