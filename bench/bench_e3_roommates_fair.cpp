// E3 — §III.B / Fig. 2: searching for stable and fair binary matchings with
// the stable-roommates machinery.
//
// Paper claims regenerated:
//  * the left-hand §III.B instance reduces to the matching
//    (m, u'), (m', w), (w', u);
//  * the right-hand instance empties u's reduced list — no stable matching;
//  * on the Fig. 2 deadlock, breaking the man-side loop yields the
//    woman-optimal matching and vice versa; alternating man/woman-oriented
//    loop breaking gives procedural fairness (lower sex-equality cost than
//    either one-sided GS outcome, measured on random instances).

#include "bench_common.hpp"

namespace {

using namespace kstable;

const char* person_name(rm::Person p) {
  static const char* names[] = {"m", "m'", "w", "w'", "u", "u'"};
  return names[p];
}

void report() {
  std::cout << "E3: roommates-based binary matching and fair SMP (§III.B)\n\n";

  {
    const auto left = rm::examples::sec3b_left();
    const auto result = rm::solve(left);
    std::cout << "Left-hand instance: ";
    if (result.has_stable) {
      for (rm::Person p = 0; p < 6; ++p) {
        if (result.match[static_cast<std::size_t>(p)] > p) {
          std::cout << '(' << person_name(p) << ", "
                    << person_name(result.match[static_cast<std::size_t>(p)])
                    << ") ";
        }
      }
      std::cout << "  [paper: (m, u'), (m', w), (w', u)]\n";
    } else {
      std::cout << "NO STABLE MATCHING (paper disagrees — bug!)\n";
    }
  }
  {
    const auto right = rm::examples::sec3b_right();
    const auto result = rm::solve(right);
    std::cout << "Right-hand instance: "
              << (result.has_stable ? "stable found (paper disagrees — bug!)"
                                    : "no stable matching")
              << "  [paper: u's reduced list empties -> none]\n";
    if (!result.has_stable) {
      std::cout << "  person with emptied list: "
                << person_name(result.failed_person) << '\n';
    }
  }
  std::cout << '\n';

  TableWriter fairness(
      "Procedural fairness on random SMP instances (n=64, 20 seeds)",
      {"policy", "men cost", "women cost", "sex-equality"});
  Rng rng(21);
  const Index n = 64;
  const int trials = 20;
  double men_m = 0, men_w = 0, men_eq = 0;
  double wom_m = 0, wom_w = 0, wom_eq = 0;
  double alt_m = 0, alt_w = 0, alt_eq = 0;
  for (int t = 0; t < trials; ++t) {
    const auto inst = gen::uniform(2, n, rng);
    const auto man = rm::solve_fair_smp(inst, 0, 1, rm::FairPolicy::man_oriented);
    const auto cm = analysis::bipartite_costs(inst, 0, 1, man.man_match);
    men_m += cm.proposer_cost;
    men_w += cm.responder_cost;
    men_eq += cm.sex_equality();
    const auto woman =
        rm::solve_fair_smp(inst, 0, 1, rm::FairPolicy::woman_oriented);
    const auto cw = analysis::bipartite_costs(inst, 0, 1, woman.man_match);
    wom_m += cw.proposer_cost;
    wom_w += cw.responder_cost;
    wom_eq += cw.sex_equality();
    const auto alt = rm::solve_fair_smp(inst, 0, 1, rm::FairPolicy::alternate);
    const auto ca = analysis::bipartite_costs(inst, 0, 1, alt.man_match);
    alt_m += ca.proposer_cost;
    alt_w += ca.responder_cost;
    alt_eq += ca.sex_equality();
  }
  fairness.add_row({std::string("man-oriented (= men-proposing GS)"),
                    men_m / trials, men_w / trials, men_eq / trials});
  fairness.add_row({std::string("woman-oriented (= women-proposing GS)"),
                    wom_m / trials, wom_w / trials, wom_eq / trials});
  fairness.add_row({std::string("alternate (procedural fairness)"),
                    alt_m / trials, alt_w / trials, alt_eq / trials});
  fairness.print(std::cout);
}

void bm_solve_examples(benchmark::State& state) {
  const auto inst = rm::examples::sec3b_left();
  for (auto _ : state) {
    const auto result = rm::solve(inst);
    benchmark::DoNotOptimize(result.has_stable);
  }
}
BENCHMARK(bm_solve_examples);

void bm_fair_smp(benchmark::State& state) {
  const auto n = static_cast<Index>(state.range(0));
  Rng rng(23);
  const auto inst = gen::uniform(2, n, rng);
  for (auto _ : state) {
    const auto result = rm::solve_fair_smp(inst, 0, 1, rm::FairPolicy::alternate);
    benchmark::DoNotOptimize(result.man_match.data());
  }
}
BENCHMARK(bm_fair_smp)->RangeMultiplier(4)->Range(16, 1024);

void bm_plain_gs_for_contrast(benchmark::State& state) {
  const auto n = static_cast<Index>(state.range(0));
  Rng rng(23);
  const auto inst = gen::uniform(2, n, rng);
  for (auto _ : state) {
    const auto result = gs::gale_shapley_queue(inst, 0, 1);
    benchmark::DoNotOptimize(result.proposals);
  }
}
BENCHMARK(bm_plain_gs_for_contrast)->RangeMultiplier(4)->Range(16, 1024);

}  // namespace

KSTABLE_BENCH_MAIN(report)
