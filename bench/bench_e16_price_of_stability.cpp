// E16 — the paper's §I framing, quantified: objective-based matching
// (maximum-weight / minimum-cost assignment, the paper's reference [1])
// versus stability-based matching.
//
// Series:
//  * egalitarian cost of the min-cost assignment (Hungarian) vs GS vs the
//    egalitarian-OPTIMAL STABLE matching (lattice) — the "price of
//    stability" in rank cost;
//  * blocking pairs the cost-optimal assignment accepts (GS: always 0).

#include "bench_common.hpp"

#include "analysis/assignment.hpp"

namespace {

using namespace kstable;

void report() {
  std::cout << "E16: price of stability — assignment vs stable matching\n\n";

  TableWriter table("Egalitarian cost and instability (uniform, 20 seeds avg)",
                    {"n", "optimal assignment", "best stable (lattice)",
                     "GS (men propose)", "stability price %",
                     "blocking pairs (optimal)"});
  for (const Index n : {8, 16, 32, 64}) {
    double opt_cost = 0, stable_cost = 0, gs_cost = 0, blocking = 0;
    const int seeds = 20;
    for (int seed = 0; seed < seeds; ++seed) {
      Rng rng(static_cast<std::uint64_t>(seed) * 431 + n);
      const auto inst = gen::uniform(2, n, rng);
      const auto optimal = analysis::egalitarian_assignment(inst, 0, 1);
      opt_cost += static_cast<double>(
          analysis::bipartite_costs(inst, 0, 1, optimal).egalitarian());
      blocking += static_cast<double>(
          analysis::count_blocking_pairs(inst, 0, 1, optimal));
      const auto lattice = rm::enumerate_stable_matchings(inst, 0, 1);
      stable_cost += static_cast<double>(
          rm::egalitarian_optimal(inst, 0, 1, lattice).value);
      const auto gs_result = gs::gale_shapley_queue(inst, 0, 1);
      gs_cost += static_cast<double>(
          analysis::bipartite_costs(inst, 0, 1, gs_result.proposer_match)
              .egalitarian());
    }
    table.add_row({std::int64_t{n}, opt_cost / seeds, stable_cost / seeds,
                   gs_cost / seeds,
                   100.0 * (stable_cost - opt_cost) / std::max(opt_cost, 1.0),
                   blocking / seeds});
  }
  table.print(std::cout);
  std::cout << "Reading: stability costs a few percent of total utility over "
               "the unconstrained optimum, and the optimum is not blocking-"
               "free — the tradeoff the paper's introduction frames.\n\n";
}

void bm_hungarian(benchmark::State& state) {
  const auto n = static_cast<Index>(state.range(0));
  Rng rng(161);
  const auto inst = gen::uniform(2, n, rng);
  const auto cost = analysis::egalitarian_cost_matrix(inst, 0, 1);
  for (auto _ : state) {
    const auto assignment = analysis::min_cost_assignment(cost, n);
    benchmark::DoNotOptimize(assignment.data());
  }
  state.SetComplexityN(n);
}
BENCHMARK(bm_hungarian)->RangeMultiplier(2)->Range(16, 256)->Complexity()
    ->Unit(benchmark::kMicrosecond);

void bm_blocking_pair_count(benchmark::State& state) {
  const auto n = static_cast<Index>(state.range(0));
  Rng rng(162);
  const auto inst = gen::uniform(2, n, rng);
  const auto optimal = analysis::egalitarian_assignment(inst, 0, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        analysis::count_blocking_pairs(inst, 0, 1, optimal));
  }
}
BENCHMARK(bm_blocking_pair_count)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

KSTABLE_BENCH_MAIN(report)
