// E6 — Theorem 4 / §IV.B: k-1 binding rounds are tight.
//
// Paper claims regenerated:
//  * MORE than k-1 bindings (a cycle) may be impossible to keep consistent:
//    the §IV.B example preferences make the three pairwise GS matchings
//    collide, so the equivalence classes are not valid tuples;
//  * FEWER than k-1 bindings (a forest) leave components unbound, and the
//    assembled matching is blocked with growing probability as bindings drop;
//  * exactly k-1 bindings (spanning tree) are always consistent and stable.

#include "bench_common.hpp"

namespace {

using namespace kstable;

void report() {
  std::cout << "E6: Theorem 4 — tightness of the k-1 binding rounds\n\n";

  {
    const auto inst = gen::theorem4_cycle_prefs();
    BindingStructure cycle(3);
    cycle.add_edge({0, 1});
    cycle.add_edge({1, 2});
    cycle.add_edge({2, 0});
    const auto result = core::bind_structure(inst, cycle);
    std::cout << "Paper's §IV.B cycle preferences, bindings M-W, W-U, U-M: "
              << (result.equivalence.consistent
                      ? "CONSISTENT (paper disagrees — bug!)"
                      : "inconsistent equivalence classes")
              << "\n  detail: " << result.equivalence.inconsistency << "\n\n";
  }

  TableWriter cycles(
      "Random k=3 instances with a binding cycle (100 seeds): how often do "
      "the three GS matchings happen to agree?",
      {"n", "consistent %"});
  for (const Index n : {2, 4, 8, 16}) {
    int consistent = 0;
    const int seeds = 100;
    for (int seed = 0; seed < seeds; ++seed) {
      Rng rng(static_cast<std::uint64_t>(seed) * 53 + n);
      const auto inst = gen::uniform(3, n, rng);
      BindingStructure cycle(3);
      cycle.add_edge({0, 1});
      cycle.add_edge({1, 2});
      cycle.add_edge({2, 0});
      consistent += core::bind_structure(inst, cycle).equivalence.consistent;
    }
    cycles.add_row({std::int64_t{n}, 100.0 * consistent / seeds});
  }
  cycles.print(std::cout);

  TableWriter forests(
      "Blocked-rate vs number of bindings (k=5, n=8, 60 seeds; pairs screen)",
      {"bindings", "structure", "blocked %"});
  const int seeds = 60;
  for (std::int32_t edges = 4; edges >= 0; --edges) {
    int blocked = 0;
    for (int seed = 0; seed < seeds; ++seed) {
      Rng rng(static_cast<std::uint64_t>(seed) * 71 + edges);
      const auto inst = gen::uniform(5, 8, rng);
      BindingStructure forest(5);
      // Path prefix with `edges` edges: genders beyond stay unbound.
      for (std::int32_t e = 0; e < edges; ++e) {
        forest.add_edge({e, static_cast<Gender>(e + 1)});
      }
      const auto result = core::bind_structure(inst, forest);
      blocked += analysis::find_blocking_family_pairs(
                     inst, *result.equivalence.matching,
                     analysis::BlockingMode::strict)
                     .has_value();
    }
    forests.add_row({std::int64_t{edges},
                     std::string(edges == 4 ? "spanning tree (k-1)" : "forest"),
                     100.0 * blocked / seeds});
  }
  forests.print(std::cout);
  std::cout << "Expected shape: 0% at k-1 bindings, rising as bindings are "
               "removed (Theorem 4's lower side).\n\n";

  // Upper side, quantified: how many EXTRA consistent bindings (beyond the
  // spanning tree) does an instance admit? ("more binary bindings will
  // strengthen the family tie... may not always exist", §IV.B)
  TableWriter extra(
      "Greedy 'strengthening': extra consistent bindings beyond the k-1 tree "
      "(k=5, max extra = 6; 40 seeds)",
      {"prefs", "extra accepted avg", "extra rejected avg"});
  for (const auto& [name, noise] :
       std::vector<std::pair<std::string, double>>{{"uniform", -1.0},
                                                   {"popularity(0.2)", 0.2},
                                                   {"aligned scores", 0.0}}) {
    double accepted = 0, rejected = 0;
    const int seeds = 40;
    for (int seed = 0; seed < seeds; ++seed) {
      Rng rng(static_cast<std::uint64_t>(seed) * 97 + 11);
      const auto inst = noise < 0 ? gen::uniform(5, 8, rng)
                                  : gen::popularity(5, 8, rng, noise);
      const auto result = core::strengthen_bindings(inst, trees::path(5));
      accepted += result.extra_accepted;
      rejected += result.extra_rejected;
    }
    extra.add_row({name, accepted / seeds, rejected / seeds});
  }
  extra.print(std::cout);
  std::cout << "Globally aligned scores accept every extra binding; "
               "independent preferences almost none — strengthening 'may not "
               "always exist'.\n\n";
}

void bm_bind_forest(benchmark::State& state) {
  const auto edges = static_cast<std::int32_t>(state.range(0));
  Rng rng(61);
  const auto inst = gen::uniform(5, 64, rng);
  BindingStructure forest(5);
  for (std::int32_t e = 0; e < edges; ++e) {
    forest.add_edge({e, static_cast<Gender>(e + 1)});
  }
  for (auto _ : state) {
    const auto result = core::bind_structure(inst, forest);
    benchmark::DoNotOptimize(result.equivalence.consistent);
  }
}
BENCHMARK(bm_bind_forest)->DenseRange(0, 4);

void bm_cycle_consistency_check(benchmark::State& state) {
  const auto n = static_cast<Index>(state.range(0));
  Rng rng(62);
  const auto inst = gen::uniform(3, n, rng);
  BindingStructure cycle(3);
  cycle.add_edge({0, 1});
  cycle.add_edge({1, 2});
  cycle.add_edge({2, 0});
  for (auto _ : state) {
    const auto result = core::bind_structure(inst, cycle);
    benchmark::DoNotOptimize(result.equivalence.consistent);
  }
}
BENCHMARK(bm_cycle_consistency_check)->Arg(16)->Arg(128);

}  // namespace

KSTABLE_BENCH_MAIN(report)
