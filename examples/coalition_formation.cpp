// Coalition formation across many specialist pools (paper §VII future work:
// k-ary matching in k'-partite graphs with ck = nk').
//
// Scenario: a project marketplace has six specialist pools — product,
// design, frontend, backend, data, ops — and wants to form three-person
// project cells, each drawing one member from a pair of pools (product+design,
// frontend+backend, data+ops). That is exactly a k' = 6 -> k = 3 super-gender
// decomposition: each cell takes one member per super-gender, members rank
// the merged pools through a linearization, and Algorithm 1 on the derived
// 3-partite instance yields provably stable cells.
//
// Run: ./coalition_formation [n] [seed]

#include <cstdlib>
#include <iostream>
#include <limits>

#include "core/kstable.hpp"
#include "example_args.hpp"

namespace {
int usage() {
  std::cerr << "usage: coalition_formation [n>=1] [seed]\n";
  return 2;
}
}  // namespace

int main(int argc, char** argv) {
  using namespace kstable;
  using examples_cli::parse_arg;
  if (argc > 3) return usage();
  const auto n_arg = argc > 1
      ? parse_arg<Index>(argv[1], 1, std::numeric_limits<Index>::max(), "n")
      : std::optional<Index>{8};
  const auto seed_arg = argc > 2
      ? parse_arg<std::uint64_t>(argv[2], 0,
                                 std::numeric_limits<std::uint64_t>::max(),
                                 "seed")
      : std::optional<std::uint64_t>{13};
  if (!n_arg || !seed_arg) return usage();
  const Index n = *n_arg;
  const std::uint64_t seed = *seed_arg;

  const char* pool_names[] = {"product", "design", "frontend",
                              "backend", "data",   "ops"};
  Rng rng(seed);
  const auto market = gen::popularity(6, n, rng, 0.7);

  const auto partition = core::SupergenderPartition::contiguous(6, 2);
  std::cout << "Pools per cell slot:\n";
  for (std::size_t G = 0; G < partition.groups.size(); ++G) {
    std::cout << "  slot " << G << ": ";
    for (std::size_t i = 0; i < partition.groups[G].size(); ++i) {
      std::cout << (i ? " + " : "")
                << pool_names[partition.groups[G][i]];
    }
    std::cout << '\n';
  }

  const auto result = core::coalition_binding(
      market, partition, rm::Linearization::round_robin);
  std::cout << "\nFormed " << result.coalitions.size()
            << " three-person cells from " << 6 * n << " specialists ("
            << result.binding.total_proposals << " proposals).\n\n";

  for (std::size_t t = 0; t < std::min<std::size_t>(5, result.coalitions.size());
       ++t) {
    std::cout << "cell " << t << ": ";
    for (std::size_t s = 0; s < result.coalitions[t].members.size(); ++s) {
      const MemberId m = result.coalitions[t].members[s];
      std::cout << (s ? ", " : "") << pool_names[m.gender] << '#' << m.index;
    }
    std::cout << '\n';
  }

  // Stability w.r.t. the derived (linearized) preferences — Theorem 2.
  const bool blocked =
      analysis::find_blocking_family_pairs(result.system.derived,
                                           result.binding.matching(),
                                           analysis::BlockingMode::strict)
          .has_value();
  std::cout << "\nNo cell pair can profitably re-form: "
            << (blocked ? "FALSE (bug!)" : "true (stable coalitions)") << '\n';
  return blocked ? 1 : 0;
}
