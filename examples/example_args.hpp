// Shared checked argv parsing for the example binaries and kmatch.
//
// Every demo used to push argv through std::atoi, so `society_kparent x y`
// silently ran with k=0 and `kmatch gen -3 ...` wrapped a negative Gender
// into the generator. parse_arg rejects non-numeric, partial, and
// out-of-range input, prints one actionable line to stderr, and lets the
// caller exit 2 through its usage() path.
#pragma once

#include <iostream>
#include <optional>

#include "util/parse.hpp"

namespace kstable::examples_cli {

/// Parses `text` as a T in [lo, hi]; on failure prints
/// "invalid <what> '<text>' (expected ... in [lo, hi])" to stderr and
/// returns nullopt so the caller can exit 2 via usage().
template <typename T>
[[nodiscard]] std::optional<T> parse_arg(const char* text, T lo, T hi,
                                         const char* what) {
  const auto value = util::parse_number<T>(text, lo, hi);
  if (!value.has_value()) {
    std::cerr << "invalid " << what << " '" << text << "' (expected "
              << (std::is_floating_point_v<T> ? "number" : "integer")
              << " in [" << +lo << ", " << +hi << "])\n";
  }
  return value;
}

}  // namespace kstable::examples_cli
