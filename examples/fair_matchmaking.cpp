// Fair matchmaking (paper §III.B): solving the stable marriage problem with
// the stable-roommates machinery to address GS's gender unfairness.
//
// 1. Reproduces the Fig. 2 deadlock and shows how breaking each loop yields
//    the man-optimal or woman-optimal matching.
// 2. On random instances, compares men-proposing GS, women-proposing GS, and
//    the roommates-based solver under man/woman/alternating rotation
//    policies, reporting the egalitarian and sex-equality costs.
//
// Run: ./fair_matchmaking [n] [seed]

#include <cstdlib>
#include <iostream>
#include <limits>

#include "core/kstable.hpp"
#include "example_args.hpp"

namespace {

using namespace kstable;

int usage() {
  std::cerr << "usage: fair_matchmaking [n>=1] [seed]\n";
  return 2;
}

void fig2_demo() {
  std::cout << "--- Fig. 2 deadlock: m->w, w->m', m'->w', w'->m ---\n";
  const KPartiteInstance inst = examples::example1_second();
  const char* names[] = {"man-oriented ", "woman-oriented", "alternate     "};
  const rm::FairPolicy policies[] = {rm::FairPolicy::man_oriented,
                                     rm::FairPolicy::woman_oriented,
                                     rm::FairPolicy::alternate};
  for (int p = 0; p < 3; ++p) {
    const auto fair = rm::solve_fair_smp(inst, examples::kMen,
                                         examples::kWomen, policies[p]);
    std::cout << names[p] << " loop breaking:  ";
    for (Index m = 0; m < 2; ++m) {
      std::cout << "(a" << m << ", b" << fair.man_match[static_cast<std::size_t>(m)]
                << ") ";
    }
    std::cout << '\n';
  }
  std::cout << '\n';
}

void comparison(Index n, std::uint64_t seed) {
  Rng rng(seed);
  TableWriter table("GS vs roommates-based fair SMP (n=" + std::to_string(n) +
                        ", averaged over 20 instances)",
                    {"solver", "men cost", "women cost", "egalitarian",
                     "sex-equality"});
  const int trials = 20;
  struct Sums {
    double men = 0, women = 0, egal = 0, eq = 0;
  };
  Sums gs_men, gs_women, fair_man, fair_woman, fair_alt;

  auto add = [](Sums& s, const analysis::BipartiteCosts& c) {
    s.men += static_cast<double>(c.proposer_cost);
    s.women += static_cast<double>(c.responder_cost);
    s.egal += static_cast<double>(c.egalitarian());
    s.eq += static_cast<double>(c.sex_equality());
  };

  for (int trial = 0; trial < trials; ++trial) {
    const auto inst = gen::uniform(2, n, rng);
    // Men-proposing GS.
    const auto men_gs = gs::gale_shapley_queue(inst, 0, 1);
    add(gs_men, analysis::bipartite_costs(inst, 0, 1, men_gs.proposer_match));
    // Women-proposing GS (costs still reported men-first for comparability).
    const auto women_gs = gs::gale_shapley_queue(inst, 1, 0);
    std::vector<Index> man_view(static_cast<std::size_t>(n));
    for (Index w = 0; w < n; ++w) {
      man_view[static_cast<std::size_t>(
          women_gs.proposer_match[static_cast<std::size_t>(w)])] = w;
    }
    add(gs_women, analysis::bipartite_costs(inst, 0, 1, man_view));
    // Roommates-based fair solvers.
    for (const auto& [policy, sums] :
         {std::pair{rm::FairPolicy::man_oriented, &fair_man},
          std::pair{rm::FairPolicy::woman_oriented, &fair_woman},
          std::pair{rm::FairPolicy::alternate, &fair_alt}}) {
      const auto fair = rm::solve_fair_smp(inst, 0, 1, policy);
      add(*sums, analysis::bipartite_costs(inst, 0, 1, fair.man_match));
    }
  }

  auto row = [&](const char* name, const Sums& s) {
    table.add_row({std::string(name), s.men / trials, s.women / trials,
                   s.egal / trials, s.eq / trials});
  };
  row("GS (men propose)", gs_men);
  row("GS (women propose)", gs_women);
  row("roommates man-oriented", fair_man);
  row("roommates woman-oriented", fair_woman);
  row("roommates alternate", fair_alt);
  table.print(std::cout);
  std::cout << "Lower sex-equality = fairer. The alternate policy sits "
               "between the two one-sided optima.\n";
}

}  // namespace

int main(int argc, char** argv) {
  using examples_cli::parse_arg;
  if (argc > 3) return usage();
  const auto n_arg = argc > 1
      ? parse_arg<Index>(argv[1], 1, std::numeric_limits<Index>::max(), "n")
      : std::optional<Index>{64};
  const auto seed_arg = argc > 2
      ? parse_arg<std::uint64_t>(argv[2], 0,
                                 std::numeric_limits<std::uint64_t>::max(),
                                 "seed")
      : std::optional<std::uint64_t>{42};
  if (!n_arg || !seed_arg) return usage();
  fig2_demo();
  comparison(*n_arg, *seed_arg);
  return 0;
}
