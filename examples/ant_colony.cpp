// Harvester-ant reproduction (paper §V.B): "certain harvester ants have three
// genders... the queen needs to mate with two different strains of male for
// future queens and future workers."
//
// Models a colony season as a balanced tripartite matching problem — queens,
// strain-A males, strain-B males — where each queen must be matched with one
// male of each strain (a 3-ary family). Shows:
//   * stable ternary matchings always exist (Theorem 2) and are found by
//     Algorithm 1 with the queen gender as the binding hub;
//   * plain binary pairing is NOT guaranteed stable in this 3-gender world:
//     the Theorem 1 adversarial season has a perfect pairing but no stable
//     one.
//
// Run: ./ant_colony [colonies] [seed]

#include <cstdlib>
#include <iostream>
#include <limits>

#include "core/kstable.hpp"
#include "example_args.hpp"

namespace {
int usage() {
  std::cerr << "usage: ant_colony [colonies>=1] [seed]\n";
  return 2;
}
}  // namespace

int main(int argc, char** argv) {
  using namespace kstable;
  using examples_cli::parse_arg;
  if (argc > 3) return usage();
  const auto n_arg = argc > 1
      ? parse_arg<Index>(argv[1], 1, std::numeric_limits<Index>::max(),
                         "colonies")
      : std::optional<Index>{32};
  const auto seed_arg = argc > 2
      ? parse_arg<std::uint64_t>(argv[2], 0,
                                 std::numeric_limits<std::uint64_t>::max(),
                                 "seed")
      : std::optional<std::uint64_t>{2016};
  if (!n_arg || !seed_arg) return usage();
  const Index n = *n_arg;
  const std::uint64_t seed = *seed_arg;

  constexpr Gender kQueens = 0, kStrainA = 1, kStrainB = 2;
  Rng rng(seed);
  std::cout << "Colony season: " << n << " queens, " << n
            << " strain-A males, " << n << " strain-B males\n\n";

  // Preferences: queens judge males by vigor (popularity-correlated); males
  // judge queens likewise; the two male strains rank each other randomly
  // (they never mate, but the model keeps lists complete).
  const auto season = gen::popularity(3, n, rng, 0.8);

  // Mating plan: star binding with the queen gender at the hub — each queen
  // is bound to one male of each strain, exactly the two-strain requirement.
  const auto tree = trees::star(3, kQueens);
  const auto plan = core::iterative_binding(season, tree);
  std::cout << "Algorithm 1 (queen-hub star) used " << plan.total_proposals
            << " proposals for " << n << " broods.\n";

  const auto costs = analysis::kary_tree_costs(season, plan.matching(), tree);
  std::cout << "Queen satisfaction cost (ranks of her two mates, summed over "
               "colonies): "
            << costs.per_gender_cost[kQueens] << '\n';

  std::cout << "\nFirst three broods (queen, strain-A mate, strain-B mate):\n";
  for (Index t = 0; t < std::min<Index>(3, n); ++t) {
    std::cout << "  brood " << t << ": " << plan.matching().member_at(t, kQueens)
              << " + " << plan.matching().member_at(t, kStrainA) << " + "
              << plan.matching().member_at(t, kStrainB) << '\n';
  }

  const auto blocking = analysis::find_blocking_family_pairs(
      season, plan.matching(), analysis::BlockingMode::strict);
  std::cout << "\nStable against defecting broods: "
            << (blocking ? "NO (bug!)" : "yes (Theorem 2)") << '\n';

  // Contrast: binary (one-mate) pairing in the same 3-gender world can be
  // made unstable by adversarial preferences (Theorem 1).
  Rng adv_rng(seed + 1);
  const Index adv_n = (n % 2 == 0) ? n : n + 1;  // even node count needed
  const auto adversarial =
      core::theorem1_adversarial_roommates(3, adv_n, adv_rng);
  const auto binary = rm::solve(adversarial);
  std::cout << "Theorem 1 control (single-mate pairing, adversarial season): "
            << (binary.has_stable
                    ? "unexpectedly stable (bug!)"
                    : "no stable pairing exists — k-ary matching is the fix")
            << '\n';
  return (blocking || binary.has_stable) ? 1 : 0;
}
