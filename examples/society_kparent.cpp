// k-parent family formation (paper §IV.A's "futuristic family with k-parent,
// one from each of the k different genders in a society with k genders").
//
// Simulates a society of k genders with popularity-correlated preferences,
// forms stable k-parent families with the Iterative Binding GS algorithm
// (and the priority-aware variant of §IV.D), and reports how the binding
// tree's shape affects family quality and the parallel matching schedule.
//
// Run: ./society_kparent [k] [n] [seed]

#include <cstdlib>
#include <iostream>
#include <limits>

#include "core/kstable.hpp"
#include "example_args.hpp"

namespace {

using namespace kstable;

int usage() {
  std::cerr << "usage: society_kparent [k>=2] [n>=1] [seed]\n";
  return 2;
}

void report_tree(const KPartiteInstance& inst, const std::string& label,
                 const BindingStructure& tree, ThreadPool& pool,
                 TableWriter& table) {
  const auto report =
      core::execute_binding(inst, tree, core::ExecutionMode::erew_rounds, pool);
  const auto costs = analysis::kary_costs(inst, report.binding.matching());
  const auto bound = analysis::kary_tree_costs(inst, report.binding.matching(),
                                               tree);
  table.add_row({label, std::int64_t{tree.max_degree()},
                 report.rounds_executed, report.binding.total_proposals,
                 bound.total_cost, costs.total_cost,
                 std::int64_t{costs.regret}});
}

}  // namespace

int main(int argc, char** argv) {
  using examples_cli::parse_arg;
  if (argc > 4) return usage();
  const auto k_arg = argc > 1
      ? parse_arg<Gender>(argv[1], 2, std::numeric_limits<Gender>::max(), "k")
      : std::optional<Gender>{6};
  const auto n_arg = argc > 2
      ? parse_arg<Index>(argv[2], 1, std::numeric_limits<Index>::max(), "n")
      : std::optional<Index>{128};
  const auto seed_arg = argc > 3
      ? parse_arg<std::uint64_t>(argv[3], 0,
                                 std::numeric_limits<std::uint64_t>::max(),
                                 "seed")
      : std::optional<std::uint64_t>{7};
  if (!k_arg || !n_arg || !seed_arg) return usage();
  const Gender k = *k_arg;
  const Index n = *n_arg;
  const std::uint64_t seed = *seed_arg;

  Rng rng(seed);
  std::cout << "Society: " << k << " genders x " << n << " members, "
            << "popularity-correlated preferences (noise 0.5)\n\n";
  const auto inst = gen::popularity(k, n, rng, 0.5);
  ThreadPool pool;

  TableWriter table("k-parent family formation across binding trees",
                    {"binding tree", "max degree", "EREW rounds",
                     "proposals", "bound-pair cost", "all-pairs cost",
                     "worst rank"});
  report_tree(inst, "path (Fig. 4 even-odd)", trees::path(k), pool, table);
  report_tree(inst, "star at gender 0", trees::star(k, 0), pool, table);
  report_tree(inst, "star at top priority", trees::star(k, k - 1), pool, table);
  Rng tree_rng(seed + 1);
  report_tree(inst, "random tree", prufer::random_tree(k, tree_rng), pool,
              table);
  table.print(std::cout);

  // Priority-aware formation (§IV.D): society ranks genders by id; the grown
  // tree is bitonic and the result resists weakened blocking families.
  const auto priority = core::priority_binding(inst);
  std::cout << "Priority-based binding (Algorithm 2) grew a tree with max "
               "degree "
            << priority.tree.degree(k - 1) << " rooted at gender "
            << (k - 1) << "; bitonic: "
            << (sched::is_bitonic_tree(priority.tree) ? "yes" : "no") << "\n";

  // Spot-check stability the way a downstream user would: polynomial
  // two-family screen plus randomized probes.
  Rng probe(seed + 2);
  const bool blocked =
      analysis::find_blocking_family_pairs(inst, priority.binding.matching(),
                                           analysis::BlockingMode::strict)
          .has_value() ||
      analysis::find_blocking_family_sampled(inst, priority.binding.matching(),
                                             probe, 20000)
          .has_value();
  std::cout << "Stability probe on the k-parent matching: "
            << (blocked ? "BLOCKED (bug!)" : "no blocking family found")
            << '\n';

  // Show three example families.
  std::cout << "\nSample families (one parent per gender):\n";
  for (Index t = 0; t < std::min<Index>(3, n); ++t) {
    std::cout << "  family " << t << ": ";
    for (Gender g = 0; g < k; ++g) {
      std::cout << (g ? ", " : "") << priority.binding.matching().member_at(t, g);
    }
    std::cout << '\n';
  }
  return blocked ? 1 : 0;
}
