// k-parent family formation (paper §IV.A's "futuristic family with k-parent,
// one from each of the k different genders in a society with k genders").
//
// Simulates a society of k genders with popularity-correlated preferences,
// forms stable k-parent families with the Iterative Binding GS algorithm
// (and the priority-aware variant of §IV.D), and reports how the binding
// tree's shape affects family quality and the parallel matching schedule.
//
// Run: ./society_kparent [k] [n] [seed]

#include <cstdlib>
#include <iostream>

#include "core/kstable.hpp"

namespace {

using namespace kstable;

void report_tree(const KPartiteInstance& inst, const std::string& label,
                 const BindingStructure& tree, ThreadPool& pool,
                 TableWriter& table) {
  const auto report =
      core::execute_binding(inst, tree, core::ExecutionMode::erew_rounds, pool);
  const auto costs = analysis::kary_costs(inst, report.binding.matching());
  const auto bound = analysis::kary_tree_costs(inst, report.binding.matching(),
                                               tree);
  table.add_row({label, std::int64_t{tree.max_degree()},
                 report.rounds_executed, report.binding.total_proposals,
                 bound.total_cost, costs.total_cost,
                 std::int64_t{costs.regret}});
}

}  // namespace

int main(int argc, char** argv) {
  const Gender k = argc > 1 ? static_cast<Gender>(std::atoi(argv[1])) : 6;
  const Index n = argc > 2 ? static_cast<Index>(std::atoi(argv[2])) : 128;
  const std::uint64_t seed =
      argc > 3 ? static_cast<std::uint64_t>(std::atoll(argv[3])) : 7;

  Rng rng(seed);
  std::cout << "Society: " << k << " genders x " << n << " members, "
            << "popularity-correlated preferences (noise 0.5)\n\n";
  const auto inst = gen::popularity(k, n, rng, 0.5);
  ThreadPool pool;

  TableWriter table("k-parent family formation across binding trees",
                    {"binding tree", "max degree", "EREW rounds",
                     "proposals", "bound-pair cost", "all-pairs cost",
                     "worst rank"});
  report_tree(inst, "path (Fig. 4 even-odd)", trees::path(k), pool, table);
  report_tree(inst, "star at gender 0", trees::star(k, 0), pool, table);
  report_tree(inst, "star at top priority", trees::star(k, k - 1), pool, table);
  Rng tree_rng(seed + 1);
  report_tree(inst, "random tree", prufer::random_tree(k, tree_rng), pool,
              table);
  table.print(std::cout);

  // Priority-aware formation (§IV.D): society ranks genders by id; the grown
  // tree is bitonic and the result resists weakened blocking families.
  const auto priority = core::priority_binding(inst);
  std::cout << "Priority-based binding (Algorithm 2) grew a tree with max "
               "degree "
            << priority.tree.degree(k - 1) << " rooted at gender "
            << (k - 1) << "; bitonic: "
            << (sched::is_bitonic_tree(priority.tree) ? "yes" : "no") << "\n";

  // Spot-check stability the way a downstream user would: polynomial
  // two-family screen plus randomized probes.
  Rng probe(seed + 2);
  const bool blocked =
      analysis::find_blocking_family_pairs(inst, priority.binding.matching(),
                                           analysis::BlockingMode::strict)
          .has_value() ||
      analysis::find_blocking_family_sampled(inst, priority.binding.matching(),
                                             probe, 20000)
          .has_value();
  std::cout << "Stability probe on the k-parent matching: "
            << (blocked ? "BLOCKED (bug!)" : "no blocking family found")
            << '\n';

  // Show three example families.
  std::cout << "\nSample families (one parent per gender):\n";
  for (Index t = 0; t < std::min<Index>(3, n); ++t) {
    std::cout << "  family " << t << ": ";
    for (Gender g = 0; g < k; ++g) {
      std::cout << (g ? ", " : "") << priority.binding.matching().member_at(t, g);
    }
    std::cout << '\n';
  }
  return blocked ? 1 : 0;
}
