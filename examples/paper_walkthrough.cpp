// Paper walkthrough: every worked example in "Stable Matching Beyond
// Bipartite Graphs" reproduced in paper order, with narration.
//
// Sections covered: Example 1 (§II.A), Example 2 / Fig. 1 enumeration (§II.B),
// the §II.C blocking-family illustration, Theorem 1's argument (§III.A), the
// §III.B left/right roommates instances and the Fig. 2 deadlock, Fig. 3 +
// Algorithm 1 (§IV.A), the §IV.B alternative bindings and cycle witness,
// Fig. 4 even-odd schedule (§IV.C), and Algorithm 2 / Fig. 6 (§IV.D).
//
// Run: ./paper_walkthrough

#include <iostream>

#include "core/kstable.hpp"

namespace {

using namespace kstable;

void header(const char* section) {
  std::cout << "\n======== " << section << " ========\n";
}

void section_2a() {
  header("§II.A — Example 1 (Gale-Shapley)");
  const auto first = examples::example1_first();
  const auto r1 = gs::gale_shapley_queue(first, 0, 1);
  std::cout << "First preferences, men propose: (m," << (r1.proposer_match[0] ? "w'" : "w")
            << ") (m'," << (r1.proposer_match[1] ? "w'" : "w")
            << ")  — paper: m ends with w' after rejection at w\n";

  const auto second = examples::example1_second();
  const auto men = gs::gale_shapley_queue(second, 0, 1);
  const auto women = gs::gale_shapley_queue(second, 1, 0);
  std::cout << "Second preferences: men-proposing favors men (m gets rank "
            << second.rank_of({0, 0}, {1, men.proposer_match[0]})
            << " choice), women-proposing favors women (w gets rank "
            << second.rank_of({1, 0}, {0, women.proposer_match[0]})
            << " choice) — the unfairness the paper notes.\n";
}

void section_2b() {
  header("§II.B — Example 2 / Fig. 1 (tripartite enumeration)");
  // 8 binary pairing choices, 4 ternary matchings for k=3, n=2.
  const auto inst = examples::fig3_instance();
  const auto census = analysis::kary_census(inst);
  std::cout << "Ternary matchings of a k=3, n=2 instance: "
            << census.total_matchings << " (paper lists 4), of which "
            << census.stable_matchings << " are stable.\n";
  const auto rm_inst = rm::to_roommates(inst, rm::Linearization::round_robin);
  const auto bcensus = analysis::binary_census(rm_inst);
  std::cout << "Perfect binary pairings: " << bcensus.perfect_matchings
            << " (paper lists 8 pairing choices).\n";
}

void section_2c() {
  header("§II.C — blocking family illustration");
  std::cout << "(m, w', u') blocks {(m,w,u), (m',w',u')} when m prefers w',u' "
               "and both prefer m\n";
  std::cout << "Reproduced as a pinned unit test "
               "(BlockingFamily.PaperSection2cExampleBlocks).\n";
}

void section_3a() {
  header("§III.A — Theorem 1");
  Rng rng(1);
  const auto inst = core::theorem1_adversarial_roommates(3, 4, rng);
  const auto result = rm::solve(inst);
  const auto perfect = analysis::binary_census(inst, 1).perfect_matchings;
  std::cout << "Adversarial tripartite instance (n=4): perfect matching "
            << (perfect > 0 ? "exists" : "missing!") << ", stable matching "
            << (result.has_stable ? "EXISTS (bug!)" : "does not exist") << ".\n";
  const auto self_match = rm::examples::self_matching_unstable();
  std::cout << "Self-matching variant (U may pair internally): stable matching "
            << (rm::solve(self_match).has_stable ? "EXISTS (bug!)"
                                                 : "does not exist")
            << " — the answer is negative as well, as the paper says.\n";
}

void section_3b() {
  header("§III.B — roommates solution and fairness");
  const auto left = rm::solve(rm::examples::sec3b_left());
  std::cout << "Left instance  -> (m,u') (m',w) (w',u): "
            << (left.has_stable && left.match[0] == 5 ? "reproduced" : "BUG")
            << '\n';
  const auto right = rm::solve(rm::examples::sec3b_right());
  std::cout << "Right instance -> no stable matching: "
            << (!right.has_stable ? "reproduced" : "BUG") << '\n';

  const auto deadlock = examples::example1_second();
  const auto man = rm::solve_fair_smp(deadlock, 0, 1, rm::FairPolicy::man_oriented);
  const auto woman =
      rm::solve_fair_smp(deadlock, 0, 1, rm::FairPolicy::woman_oriented);
  std::cout << "Fig. 2 deadlock: breaking one loop -> man-optimal (m,w)(m',w') ["
            << (man.man_match[0] == 0 ? "ok" : "BUG")
            << "], the other -> woman-optimal (m,w')(m',w) ["
            << (woman.man_match[0] == 1 ? "ok" : "BUG") << "]\n";
}

void section_4a() {
  header("§IV.A — Fig. 3 and Algorithm 1");
  const auto inst = examples::fig3_instance();
  BindingStructure tree(3);
  tree.add_edge({0, 1});
  tree.add_edge({1, 2});
  const auto result = core::iterative_binding(inst, tree);
  std::cout << "Bindings M-W, W-U -> ";
  for (Index t = 0; t < 2; ++t) {
    std::cout << '(';
    for (Gender g = 0; g < 3; ++g) {
      std::cout << (g ? "," : "") << result.matching().member_at(t, g);
    }
    std::cout << ") ";
  }
  std::cout << "— the paper's (m,w,u) and (m',w',u').\n";
  std::cout << "Binding tree as DOT:\n" << analysis::to_dot(tree);
}

void section_4b() {
  header("§IV.B — alternative bindings, Theorem 4");
  const auto inst = examples::fig3_instance();
  BindingStructure mu_uw(3);
  mu_uw.add_edge({0, 2});
  mu_uw.add_edge({2, 1});
  const auto alt = core::iterative_binding(inst, mu_uw);
  std::cout << "Bindings M-U, U-W give a DIFFERENT stable matching: m now "
               "pairs with "
            << alt.matching().family_member({0, 0}, 2) << " (paper: u').\n";
  const auto cycle_prefs = gen::theorem4_cycle_prefs();
  BindingStructure cycle(3);
  cycle.add_edge({0, 1});
  cycle.add_edge({1, 2});
  cycle.add_edge({2, 0});
  const auto broken = core::bind_structure(cycle_prefs, cycle);
  std::cout << "The §IV.B cycle preferences with three bindings: "
            << (broken.equivalence.consistent ? "consistent (BUG!)"
                                              : "collide, as claimed")
            << '\n';
  std::cout << "Cayley: " << prufer::cayley_count(3)
            << " binding trees for k=3; " << prufer::cayley_count(4)
            << " for k=4.\n";
}

void section_4c() {
  header("§IV.C — parallel implementation, Fig. 4");
  Rng rng(2);
  const auto inst = gen::uniform(6, 32, rng);
  ThreadPool pool;
  const auto path_run = core::execute_binding(
      inst, trees::path(6), core::ExecutionMode::erew_rounds, pool);
  const auto star_run = core::execute_binding(
      inst, trees::star(6, 0), core::ExecutionMode::erew_rounds, pool);
  std::cout << "k=6: path tree runs in " << path_run.rounds_executed
            << " EREW rounds (Corollary 2: 2), star in "
            << star_run.rounds_executed << " (Corollary 1: Δ = 5).\n";
}

void section_4d() {
  header("§IV.D — weakened condition, Algorithm 2, Fig. 6");
  Rng rng(3);
  const auto inst = gen::uniform(4, 3, rng);
  const auto result = core::priority_binding(inst);
  std::cout << "Algorithm 2 grew a bitonic tree rooted at the highest "
               "priority gender; weakened blocking family: "
            << (analysis::find_weakened_blocking_family(
                    inst, result.binding.matching(), {0, 1, 2, 3})
                    ? "FOUND (bug!)"
                    : "none")
            << '\n';
  std::cout << "Priority-grown trees for k=4: "
            << core::priority_tree_count(4) << " (Fig. 6 shows 3! = 6).\n";
  std::cout << "NOTE (documented deviation): non-star bitonic trees can admit "
               "weakened blocking families — see EXPERIMENTS.md E8.\n";
}

}  // namespace

int main() {
  std::cout << "Walkthrough of 'Stable Matching Beyond Bipartite Graphs' "
               "(Wu, IPPS 2016)\n";
  section_2a();
  section_2b();
  section_2c();
  section_3a();
  section_3b();
  section_4a();
  section_4b();
  section_4c();
  section_4d();
  std::cout << "\nAll sections reproduced. Tests pin each of these checks.\n";
  return 0;
}
