// Quickstart: the paper's running tripartite example, end to end.
//
// Builds the Fig. 1/Fig. 3 instance (men, women, undecided; two members
// each), runs the Iterative Binding GS algorithm (Algorithm 1) over the
// binding tree M-W, W-U, prints the resulting stable ternary families, and
// verifies stability with the exact blocking-family search.
//
// Run: ./quickstart

#include <iostream>

#include "core/kstable.hpp"

int main() {
  using namespace kstable;

  // The Fig. 3 preference lists (see prefs/examples.cpp for the exact values
  // stated in the paper's text).
  const KPartiteInstance inst = examples::fig3_instance();
  std::cout << "Instance: k = " << inst.genders()
            << " genders, n = " << inst.per_gender() << " members each\n\n";

  const char* gender_name[] = {"man", "woman", "undecided"};
  for (Gender g = 0; g < 3; ++g) {
    for (Index i = 0; i < 2; ++i) {
      const MemberId m{g, i};
      std::cout << gender_name[g] << ' ' << m << " prefers:";
      for (Gender h = 0; h < 3; ++h) {
        if (h == g) continue;
        std::cout << "  [" << gender_name[h] << ':';
        for (const Index idx : inst.pref_list(m, h)) {
          std::cout << ' ' << MemberId{h, idx};
        }
        std::cout << ']';
      }
      std::cout << '\n';
    }
  }

  // Algorithm 1: bind M-W then W-U (a spanning tree on the gender set).
  BindingStructure tree(3);
  tree.add_edge({examples::kMen, examples::kWomen});
  tree.add_edge({examples::kWomen, examples::kUndecided});
  const core::BindingResult result = core::iterative_binding(inst, tree);

  std::cout << "\nBinding tree: M-W, W-U   ("
            << result.total_proposals << " accumulated proposals, bound "
            << (3 - 1) * 2 * 2 << " by Theorem 3)\n";
  std::cout << "Stable ternary families:\n";
  const KaryMatching& matching = result.matching();
  for (Index t = 0; t < matching.family_count(); ++t) {
    std::cout << "  (";
    for (Gender g = 0; g < 3; ++g) {
      std::cout << (g ? ", " : "") << matching.member_at(t, g);
    }
    std::cout << ")\n";
  }

  // Theorem 2 says this cannot find anything — check anyway.
  const auto blocking = analysis::find_blocking_family(inst, matching);
  std::cout << "\nBlocking family search: "
            << (blocking ? "FOUND (bug!)" : "none — matching is stable")
            << '\n';

  const auto costs = analysis::kary_costs(inst, matching);
  std::cout << "Total family cost (sum of partner ranks): " << costs.total_cost
            << ", worst rank anyone accepted: " << costs.regret << '\n';
  return blocking ? 1 : 0;
}
