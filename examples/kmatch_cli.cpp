// kmatch: a small command-line front-end to the kstable library.
//
// Usage:
//   kmatch gen   <k> <n> <seed> <file>       write a random instance
//   kmatch kary  <file> [tree]               stable k-ary matching (Algorithm 1)
//                                            tree: path | star | random |
//                                            priority | best (TreeSweep argmin
//                                            over all k^(k-2) trees, small k)
//   kmatch binary <file> [lin]               stable binary matching via the
//                                            roommates solver; lin: rr | blocks
//   kmatch roommates <file>                  solve a roommates-format instance
//   kmatch coalitions <file> <c>             super-gender coalitions of group
//                                            size c (k' must be divisible by c)
//   kmatch verify                            cross-engine differential sweep
//                                            (docs/VERIFY.md); mismatches are
//                                            emitted as JSON lines, the first
//                                            failing seed is delta-debugged to
//                                            a minimal loadable repro file
//   kmatch serve --stdio|--port=<p>          long-lived matching service
//                                            (docs/SERVE.md): bounded admission
//                                            queue with load shedding,
//                                            per-request deadlines, fallback
//                                            degradation, graceful drain on
//                                            SIGINT/SIGTERM
//   kmatch ping --port=<p>                   bundled serve test client:
//                                            windowed workload with SHED
//                                            backoff, resend, reconnect, and
//                                            duplicate-consistency checking
//   kmatch mertens [--n= --samples= --seed=] regenerate the Mertens random-SMP
//                                            asymptotics (partner rank ~ ln n /
//                                            n/ln n) on the implicit backend;
//                                            n up to 2*10^6 in O(n) memory
//   kmatch info  <file>                      print instance dimensions
//
// Global flags (accepted anywhere on the command line):
//   --deadline-ms=<ms>     abort the solve after a wall-clock deadline
//   --max-proposals=<n>    abort the solve after n accumulated proposals
//   --fallback             (kary only) on abort, retry along different
//                          spanning trees, then degrade to the priority model
//   --sweep-threads=<n>    pool size for 'kary <file> best' and the
//                          speculative --fallback ladder (checked, >= 1;
//                          1 = sequential, the default)
//   --stats-json=<file>    write the solve's telemetry + the process metrics
//                          registry as one JSON object (docs/OBSERVABILITY.md)
//   --stats-prom=<file>    same data in Prometheus text exposition format
//
// Verify flags (kmatch verify only):
//   --seeds=<n>            seeds per shape (default 100)
//   --shape=<s>            bipartite | kpartite | roommates | all (default all)
//   --dist=<d>             uniform | master | skewed | adversarial | mixed
//   --base-seed=<n>        first seed of the sweep (default 1)
//   --sabotage=<s>         none | gs_swap | kary_swap — deliberately corrupt
//                          one engine's output to self-test the harness
//   --repro-dir=<dir>      where minimal repro files are written (default .)
//   --churn=<n>            incremental re-stabilization legs: n random
//                          preference mutations per instance, each checked
//                          bitwise against a cold solve (default 0 = off)
//
// Every numeric argument is parsed with the checked parse_arg helper: garbage,
// trailing junk, and out-of-range values (k < 2, n < 1, negative seeds) are
// rejected with exit code 2 instead of silently wrapping through std::atoi.
//
// Exit code 0 on success, 1 on "no stable matching", 2 on usage errors,
// 3 when a solve was aborted (deadline/budget exhausted without --fallback,
// or every fallback rung failed), 4 when `kmatch verify` detected a
// cross-engine mismatch (the minimal repro path is printed).
//
// `kmatch serve` exit codes (pinned by cli_regression): 2 on bad flags,
// 0 after a clean drain, 3 when the drain deadline + grace elapsed with work
// still in flight. `kmatch ping`: 0 when every request was acknowledged
// exactly-once-consistently, 1 on lost or inconsistent responses, 2 usage.

#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "core/kstable.hpp"
#include "example_args.hpp"
#include "serve/client.hpp"
#include "serve/engine.hpp"
#include "serve/fd_stream.hpp"
#include "serve/server.hpp"

namespace {

using namespace kstable;
using examples_cli::parse_arg;

/// Flags shared by every solving command; set once in main().
resilience::Budget g_budget;
bool g_fallback = false;
std::size_t g_sweep_threads = 1;
std::string g_stats_json;
std::string g_stats_prom;
/// `kmatch verify` knobs (defaults mirror verify::VerifyOptions).
verify::VerifyOptions g_verify;
/// `kmatch serve` knobs (defaults mirror serve::ServeLimits). The global
/// --deadline-ms doubles as the server's default per-request deadline and
/// --max-proposals as the per-request proposal cap.
struct ServeFlags {
  bool stdio = false;
  std::optional<std::uint16_t> port;
  std::size_t workers = 2;
  std::size_t queue_depth = 16;
  double max_deadline_ms = 10000.0;
  double shed_retry_ms = 25.0;
  double drain_deadline_ms = 2000.0;
  double drain_grace_ms = 500.0;
  std::int32_t tree_attempts = 2;
  bool no_degraded = false;
  std::string chaos;           ///< comma list of serve/* points, or "all"
  std::uint64_t chaos_seed = 1;
  double chaos_prob = 0.05;
  double chaos_stall_ms = 250.0;
} g_serve;
/// `kmatch ping` knobs (defaults mirror serve::PingOptions).
struct PingFlags {
  std::size_t requests = 100;
  std::size_t window = 8;
  std::int32_t k = 3;
  std::int32_t n = 4;
  std::uint64_t seed = 1;
  double response_timeout_ms = 2000.0;
  std::string emit;         ///< write the workload as raw frames, don't connect
  std::string metrics_out;  ///< scrape a STATS body after the workload
} g_ping;
/// `kmatch mertens` knobs. n deliberately ranges far beyond what explicit
/// tables could hold — the experiment runs on the implicit backend only.
struct MertensFlags {
  Index n = 100000;
  std::int64_t samples = 3;
  std::uint64_t seed = 1;
} g_mertens;
/// Telemetry of the command's top-level solve, for --stats-json/--stats-prom.
std::optional<obs::SolveTelemetry> g_telemetry;

/// Returns a control for the configured budget, or nullptr when unlimited.
resilience::ExecControl* budget_control() {
  static resilience::ExecControl control{g_budget};
  return g_budget.unlimited() ? nullptr : &control;
}

int usage() {
  std::cerr << "usage:\n"
               "  kmatch [flags] gen <k> <n> <seed> <file>\n"
               "  kmatch [flags] kary <file> [path|star|random|priority|best]\n"
               "  kmatch [flags] binary <file> [rr|blocks]\n"
               "  kmatch [flags] roommates <file>\n"
               "  kmatch [flags] coalitions <file> <group size>\n"
               "  kmatch example [<name> <file>]   (no args: list catalog)\n"
               "  kmatch stats <file>\n"
               "  kmatch dot <file> tree|matching\n"
               "  kmatch verify [verify flags]\n"
               "  kmatch mertens [--n=<n> --samples=<s> --seed=<n>]\n"
               "  kmatch serve --stdio|--port=<p> [serve flags]\n"
               "  kmatch ping --port=<p> [ping flags]\n"
               "  kmatch info <file>\n"
               "flags: --deadline-ms=<ms>  --max-proposals=<n>  --fallback\n"
               "       --sweep-threads=<n>\n"
               "       --stats-json=<file>  --stats-prom=<file>\n"
               "verify flags: --seeds=<n>  --shape=<shape|all>  --dist=<dist>\n"
               "       --base-seed=<n>  --sabotage=<mode>  --repro-dir=<dir>\n"
               "       --churn=<n>\n"
               "serve flags: --workers=<n>  --queue-depth=<n>\n"
               "       --max-deadline-ms=<ms>  --shed-retry-ms=<ms>\n"
               "       --drain-deadline-ms=<ms>  --drain-grace-ms=<ms>\n"
               "       --tree-attempts=<n>  --no-degraded\n"
               "       --chaos=<all|point,...>  --chaos-seed=<n>\n"
               "       --chaos-prob=<p>  --chaos-stall-ms=<ms>\n"
               "ping flags: --requests=<n>  --window=<n>  --k=<k>  --n=<n>\n"
               "       --seed=<n>  --response-timeout-ms=<ms>\n"
               "       --emit=<file>  --metrics-out=<file>\n";
  return 2;
}

/// Writes the stats files requested via --stats-json/--stats-prom. The JSON
/// payload is one object: {"schema":"kstable.stats.v1","telemetry":...,
/// "metrics":{...}} where telemetry is null for commands that do not solve
/// (gen, info, ...). Returns 0, or 2 when a file cannot be written.
int write_stats() {
  if (!g_stats_json.empty()) {
    std::ofstream out(g_stats_json);
    if (!out) {
      std::cerr << "cannot write stats JSON to '" << g_stats_json << "'\n";
      return 2;
    }
    out << "{\"schema\":\"kstable.stats.v1\",\"telemetry\":";
    if (g_telemetry.has_value()) {
      g_telemetry->write_json(out);
    } else {
      out << "null";
    }
    out << ",\"metrics\":";
    obs::MetricsRegistry::global().write_json(out);
    out << "}\n";
  }
  if (!g_stats_prom.empty()) {
    std::ofstream out(g_stats_prom);
    if (!out) {
      std::cerr << "cannot write stats to '" << g_stats_prom << "'\n";
      return 2;
    }
    if (g_telemetry.has_value()) g_telemetry->write_prometheus(out);
    obs::MetricsRegistry::global().write_prometheus(out);
  }
  return 0;
}

int cmd_gen(int argc, char** argv) {
  if (argc != 6) return usage();
  const auto k = parse_arg<Gender>(argv[2], 2,
                                   std::numeric_limits<Gender>::max(), "k");
  const auto n = parse_arg<Index>(argv[3], 1,
                                  std::numeric_limits<Index>::max(), "n");
  const auto seed = parse_arg<std::uint64_t>(
      argv[4], 0, std::numeric_limits<std::uint64_t>::max(), "seed");
  if (!k || !n || !seed) return usage();
  Rng rng(*seed);
  const auto inst = gen::uniform(*k, *n, rng);
  io::save_file(inst, argv[5]);
  std::cout << "wrote " << *k << "-partite instance (" << *n
            << " members/gender) to " << argv[5] << '\n';
  return 0;
}

int cmd_info(int argc, char** argv) {
  if (argc != 3) return usage();
  const auto inst = io::load_file(argv[2]);
  std::cout << "k = " << inst.genders() << ", n = " << inst.per_gender()
            << ", members = " << inst.total_members() << ", valid = yes\n";
  return 0;
}

int cmd_kary(int argc, char** argv) {
  if (argc < 3 || argc > 4) return usage();
  const auto inst = io::load_file(argv[2]);
  const std::string shape = argc == 4 ? argv[3] : "path";
  const Gender k = inst.genders();

  core::BindingResult result;
  BindingStructure tree(k);
  // Lives outside the branches: the pool must outlive the sweep it backs.
  std::optional<ThreadPool> pool;
  if (g_fallback) {
    resilience::FallbackOptions opts;
    opts.per_attempt = g_budget;
    if (g_sweep_threads > 1) {
      // Race the strict rungs speculatively across the pool.
      pool.emplace(g_sweep_threads);
      opts.pool = &*pool;
      opts.speculative = true;
    }
    auto report = resilience::solve_with_fallback(inst, opts);
    g_telemetry = report.telemetry;
    std::cout << "fallback ladder: " << report.attempts.size()
              << " attempt(s), rung " << resilience::to_string(report.rung)
              << '\n';
    if (!report.succeeded) {
      std::cout << "all rungs failed: " << report.status.summary() << '\n';
      return 3;
    }
    tree = BindingStructure(k);
    for (const auto& e : report.attempts.back().tree_edges) tree.add_edge(e);
    result = std::move(*report.result);
  } else if (shape == "priority") {
    core::PriorityBindingOptions popts;
    popts.binding.control = budget_control();
    auto pr = core::priority_binding(inst, popts);
    result = std::move(pr.binding);
    g_telemetry = result.telemetry;
    tree = pr.tree;
  } else if (shape == "best") {
    core::TreeSweepOptions sopts;
    if (prufer::cayley_count(k) > sopts.max_trees) {
      std::cerr << "kary best sweeps all k^(k-2) trees; k = " << k
                << " spans " << prufer::cayley_count(k)
                << ", above the " << sopts.max_trees << "-tree guard\n";
      return 2;
    }
    resilience::ExecControl* control = budget_control();
    sopts.control = control;
    core::GsEdgeCache cache(k);
    sopts.cache = &cache;
    if (g_sweep_threads > 1) {
      pool.emplace(g_sweep_threads);
      sopts.pool = &*pool;
    }
    auto sweep = core::sweep_all_trees(inst, sopts);
    g_telemetry = sweep.telemetry;
    std::cout << "swept " << sweep.stats.trees << " trees ("
              << sweep.stats.workers << " worker(s), " << sweep.stats.steals
              << " steals); best tree index " << sweep.best_index
              << ", bound-pair cost " << sweep.best_cost << '\n';
    tree = *sweep.best_tree;
    result = std::move(*sweep.best);
  } else {
    if (shape == "path") {
      tree = trees::path(k);
    } else if (shape == "star") {
      tree = trees::star(k, 0);
    } else if (shape == "random") {
      Rng rng(1);
      tree = prufer::random_tree(k, rng);
    } else {
      return usage();
    }
    core::BindingOptions bopts;
    bopts.control = budget_control();
    result = core::iterative_binding(inst, tree, bopts);
    g_telemetry = result.telemetry;
  }

  std::cout << "binding tree edges:";
  for (const auto& e : tree.edges()) std::cout << " (" << e.a << ',' << e.b << ')';
  std::cout << "\nproposals: " << result.total_proposals << '\n';
  const auto& m = result.matching();
  for (Index t = 0; t < m.family_count(); ++t) {
    std::cout << "family " << t << ':';
    for (Gender g = 0; g < k; ++g) std::cout << ' ' << m.member_at(t, g);
    std::cout << '\n';
  }
  const auto costs = analysis::kary_costs(inst, m);
  std::cout << "total cost " << costs.total_cost << ", regret " << costs.regret
            << '\n';
  return 0;
}

int cmd_binary(int argc, char** argv) {
  if (argc < 3 || argc > 4) return usage();
  const auto inst = io::load_file(argv[2]);
  const std::string lin = argc == 4 ? argv[3] : "rr";
  rm::Linearization policy;
  if (lin == "rr") {
    policy = rm::Linearization::round_robin;
  } else if (lin == "blocks") {
    policy = rm::Linearization::gender_blocks;
  } else {
    return usage();
  }
  const auto result =
      rm::solve_kpartite_binary(inst, policy, nullptr, budget_control());
  g_telemetry = result.detail.telemetry;
  if (!result.has_stable) {
    std::cout << "no stable binary matching (reduced list of person "
              << result.detail.failed_person << " emptied)\n";
    return 1;
  }
  const Index n = inst.per_gender();
  std::cout << "stable binary matching (" << result.detail.phase1_proposals
            << " phase-1 proposals, " << result.detail.rotations_eliminated
            << " rotations eliminated):\n";
  for (rm::Person p = 0; p < inst.total_members(); ++p) {
    const rm::Person q = result.partner[static_cast<std::size_t>(p)];
    if (q > p) {
      std::cout << "  " << member_of(p, n) << " -- " << member_of(q, n) << '\n';
    }
  }
  return 0;
}

int cmd_example(int argc, char** argv) {
  if (argc == 2) {  // list the catalog
    for (const auto& entry : examples::catalog()) {
      std::cout << "  " << entry.name << "  —  " << entry.description << '\n';
    }
    return 0;
  }
  if (argc != 4) return usage();
  const auto inst = examples::build(argv[2]);
  io::save_file(inst, argv[3]);
  std::cout << "wrote '" << argv[2] << "' (k=" << inst.genders()
            << ", n=" << inst.per_gender() << ") to " << argv[3] << '\n';
  return 0;
}

int cmd_stats(int argc, char** argv) {
  if (argc != 3) return usage();
  const auto inst = io::load_file(argv[2]);
  const Gender k = inst.genders();
  std::cout << "k = " << k << ", n = " << inst.per_gender() << '\n';
  // Solve with a path tree and print the quality profile per tree shape.
  TableWriter table("binding quality by tree shape",
                    {"tree", "proposals", "bound-pair cost", "all-pairs cost",
                     "regret"});
  auto add = [&](const std::string& name, const BindingStructure& tree) {
    const auto result = core::iterative_binding(inst, tree);
    const auto bound = analysis::kary_tree_costs(inst, result.matching(), tree);
    const auto all = analysis::kary_costs(inst, result.matching());
    table.add_row({name, result.total_proposals, bound.total_cost,
                   all.total_cost, std::int64_t{all.regret}});
  };
  add("path", trees::path(k));
  add("star(0)", trees::star(k, 0));
  add("cost-aware", core::select_tree(inst, core::TreeObjective::min_cost));
  table.print(std::cout);
  return 0;
}

int cmd_dot(int argc, char** argv) {
  if (argc != 4) return usage();
  const auto inst = io::load_file(argv[2]);
  const std::string what = argv[3];
  if (what == "tree") {
    std::cout << analysis::to_dot(trees::path(inst.genders()));
    return 0;
  }
  if (what == "matching") {
    const auto result =
        core::iterative_binding(inst, trees::path(inst.genders()));
    std::cout << analysis::to_dot(result.matching());
    return 0;
  }
  return usage();
}

int cmd_roommates(int argc, char** argv) {
  if (argc != 3) return usage();
  const auto inst = rm::io::load_file(argv[2]);
  rm::SolveOptions solve_options;
  solve_options.control = budget_control();
  const auto result = rm::solve(inst, solve_options);
  g_telemetry = result.telemetry;
  if (!result.has_stable) {
    std::cout << "no stable matching (reduced list of person "
              << result.failed_person << " emptied)\n";
    return 1;
  }
  std::cout << "stable matching (" << result.phase1_proposals
            << " phase-1 proposals, " << result.rotations_eliminated
            << " rotations eliminated):\n";
  for (rm::Person p = 0; p < inst.size(); ++p) {
    if (result.match[static_cast<std::size_t>(p)] > p) {
      std::cout << "  " << p << " -- "
                << result.match[static_cast<std::size_t>(p)] << '\n';
    }
  }
  return 0;
}

int cmd_coalitions(int argc, char** argv) {
  if (argc != 4) return usage();
  const auto c = parse_arg<Gender>(argv[3], 1,
                                   std::numeric_limits<Gender>::max(),
                                   "group size");
  if (!c) return usage();
  const auto inst = io::load_file(argv[2]);
  if (inst.genders() % *c != 0) {
    std::cerr << "invalid group size " << *c << ": must divide k = "
              << inst.genders() << '\n';
    return usage();
  }
  const auto partition =
      core::SupergenderPartition::contiguous(inst.genders(), *c);
  const auto result = core::coalition_binding(
      inst, partition, rm::Linearization::round_robin);
  g_telemetry = result.binding.telemetry;
  std::cout << result.coalitions.size() << " coalitions of "
            << result.coalitions.front().members.size()
            << " members (one per super-gender):\n";
  for (std::size_t t = 0; t < result.coalitions.size(); ++t) {
    std::cout << "  coalition " << t << ':';
    for (const MemberId m : result.coalitions[t].members) {
      std::cout << ' ' << m;
    }
    std::cout << '\n';
  }
  return 0;
}

/// Arms the serve/* fault points named in --chaos. Returns false (usage) on
/// an unknown point name.
bool arm_serve_chaos(const std::string& spec) {
  static constexpr struct {
    const char* flag;
    const char* point;
  } kPoints[] = {
      {"accept", "serve/accept"},       {"frame_parse", "serve/frame_parse"},
      {"enqueue", "serve/enqueue"},     {"respond", "serve/respond"},
      {"stall", "serve/stall"},
  };
  std::vector<std::string> chosen;
  if (spec == "all") {
    for (const auto& entry : kPoints) chosen.push_back(entry.point);
  } else {
    std::size_t start = 0;
    while (start <= spec.size()) {
      const std::size_t comma = spec.find(',', start);
      const std::string name =
          spec.substr(start, comma == std::string::npos ? comma : comma - start);
      bool known = false;
      for (const auto& entry : kPoints) {
        if (name == entry.flag) {
          chosen.push_back(entry.point);
          known = true;
          break;
        }
      }
      if (!known) {
        std::cerr << "unknown --chaos point '" << name
                  << "' (accept, frame_parse, enqueue, respond, stall, all)\n";
        return false;
      }
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
  }
  for (std::size_t i = 0; i < chosen.size(); ++i) {
    resilience::FaultConfig config;
    config.probability = g_serve.chaos_prob;
    config.seed = g_serve.chaos_seed + i;  // decorrelate the points' streams
    config.max_fires = 0;                  // chaos is continuous, not one-shot
    resilience::FaultRegistry::instance().arm(chosen[i], config);
  }
  return true;
}

int cmd_serve(int argc, char** /*argv*/) {
  if (argc != 2) return usage();  // everything is flag-driven
  if (g_serve.stdio == g_serve.port.has_value()) {
    std::cerr << "kmatch serve needs exactly one of --stdio or --port=<p>\n";
    return usage();
  }
  if (!g_serve.chaos.empty()) {
#if defined(KSTABLE_NO_FAULT_INJECTION)
    std::cerr << "--chaos needs a build with fault injection compiled in\n";
    return 2;
#else
    if (!arm_serve_chaos(g_serve.chaos)) return usage();
#endif
  }

  serve::ServeLimits limits;
  limits.workers = g_serve.workers;
  limits.queue_depth = g_serve.queue_depth;
  if (g_budget.wall_ms > 0) limits.default_deadline_ms = g_budget.wall_ms;
  limits.max_deadline_ms = g_serve.max_deadline_ms;
  limits.shed_retry_ms = g_serve.shed_retry_ms;
  limits.drain_deadline_ms = g_serve.drain_deadline_ms;
  limits.drain_grace_ms = g_serve.drain_grace_ms;
  limits.max_proposals = g_budget.max_proposals;
  limits.max_tree_attempts = g_serve.tree_attempts;
  limits.allow_degraded = !g_serve.no_degraded;
  limits.chaos_stall_ms = g_serve.chaos_stall_ms;

  serve::ServeEngine engine(limits, serve::make_stream_sink(std::cout));
  serve::install_drain_signal_handlers(engine);

  if (g_serve.stdio) {
    // Raw fd 0, not std::cin: FdReadBuf maps EINTR to EOF, so a drain
    // signal pops the blocked read and the pump returns.
    serve::FdReadBuf in(0);
    std::istream is(&in);
    serve::pump_stream(engine, is);
  } else {
    serve::TcpServer server(engine, *g_serve.port);
    // The smoke script parses this line to learn an ephemeral port.
    std::cout << "listening on port " << server.port() << std::endl;
    server.run();
  }

  const auto drain = engine.drain();
  const auto& s = engine.stats();
  std::cerr << "serve: received " << s.received.load() << ", completed "
            << s.completed.load() << ", degraded " << s.degraded.load()
            << ", shed " << s.shed.load() << ", timeout " << s.timed_out.load()
            << ", error " << s.errors.load() << ", bad frames "
            << s.bad_frames.load() << ", responses dropped "
            << s.responses_dropped.load() << '\n';
  std::cerr << "serve: drain " << (drain.clean ? "clean" : "EXCEEDED") << " in "
            << drain.wall_ms << " ms"
            << (drain.cancelled ? " (in-flight work cancelled)" : "")
            << (drain.clean ? std::string{}
                            : ", " + std::to_string(drain.abandoned) +
                                  " request(s) still running")
            << '\n';
  return drain.clean ? 0 : 3;
}

int cmd_ping(int argc, char** /*argv*/) {
  if (argc != 2) return usage();  // everything is flag-driven
  if (g_ping.n > 4096) {  // --n= parses wider for mertens; ping keeps its cap
    std::cerr << "--n value out of range [1, 4096] for ping\n";
    return usage();
  }
  serve::PingOptions options;
  options.port = g_serve.port.value_or(0);
  options.requests = g_ping.requests;
  options.window = g_ping.window;
  options.k = g_ping.k;
  options.n = g_ping.n;
  options.seed = g_ping.seed;
  options.deadline_ms = g_budget.wall_ms;
  options.response_timeout_ms = g_ping.response_timeout_ms;

  if (!g_ping.emit.empty()) {  // offline: write the workload as raw frames
    std::ofstream out(g_ping.emit, std::ios::binary);
    if (!out) {
      std::cerr << "cannot write frames to '" << g_ping.emit << "'\n";
      return 2;
    }
    serve::emit_request_frames(options, out);
    std::cout << "wrote " << options.requests << " frames to " << g_ping.emit
              << '\n';
    return 0;
  }

  if (!g_serve.port.has_value() || *g_serve.port == 0) {
    std::cerr << "kmatch ping needs --port=<p> (1..65535)\n";
    return usage();
  }
  const bool fetch_metrics = !g_ping.metrics_out.empty();
  const auto report = serve::run_ping(options, fetch_metrics);
  std::cout << "ping: " << options.requests << " requests, acked "
            << report.acked << " (ok " << report.ok << ", degraded "
            << report.degraded << ", timeout " << report.timeouts << ", error "
            << report.errors << "), shed-retries " << report.shed_retries
            << ", resends " << report.resends << ", reconnects "
            << report.reconnects << ", duplicates " << report.duplicates
            << ", lost " << report.lost << ", inconsistent "
            << report.inconsistent << '\n';
  if (fetch_metrics) {
    if (report.metrics_body.empty()) {
      std::cerr << "no STATS response for the metrics scrape\n";
      return 1;
    }
    std::ofstream out(g_ping.metrics_out);
    if (!out) {
      std::cerr << "cannot write metrics to '" << g_ping.metrics_out << "'\n";
      return 2;
    }
    out << report.metrics_body << '\n';
  }
  return report.success() ? 0 : 1;
}

/// `kmatch mertens` — regenerate the Mertens (cond-mat/0509221) random-SMP
/// asymptotics on generator-backed uniform bipartite instances: the mean
/// proposer partner rank tracks ln n, the mean responder partner rank tracks
/// n / ln n, and the proposal count tracks n ln n. Runs entirely on the
/// implicit backend (docs/PERFORMANCE.md §Implicit preferences), so n can
/// far exceed what explicit tables would hold — memory stays O(n).
int cmd_mertens(int argc, char** /*argv*/) {
  if (argc != 2) return usage();  // everything is flag-driven
  const Index n = g_mertens.n;
  const double ln_n = std::log(static_cast<double>(n));
  const double n_over_ln_n = static_cast<double>(n) / ln_n;
  const double n_ln_n = static_cast<double>(n) * ln_n;

  TableWriter table(
      "Mertens asymptotics, implicit uniform bipartite (n=" +
          std::to_string(n) + ", " + std::to_string(g_mertens.samples) +
          " seed(s); expect ~1.0 in the ratio columns)",
      {"seed", "solve ms", "proposals", "/(n ln n)", "proposer mean",
       "/ln n", "responder mean", "/(n/ln n)"});
  double sum_prop_ratio = 0.0;
  double sum_resp_ratio = 0.0;
  double sum_proposals_ratio = 0.0;
  for (std::int64_t s = 0; s < g_mertens.samples; ++s) {
    const std::uint64_t seed = g_mertens.seed + static_cast<std::uint64_t>(s);
    const auto inst = KPartiteInstance::make_implicit(
        2, n, {prefs::imp::Family::uniform, seed});
    const auto result = gs::gale_shapley_queue(inst, 0, 1);
    double psum = 0.0;
    double rsum = 0.0;
    for (Index p = 0; p < n; ++p) {
      const Index r = result.proposer_match[static_cast<std::size_t>(p)];
      psum += inst.rank_of({0, p}, {1, r});
      rsum += inst.rank_of({1, r}, {0, p});
    }
    const double pmean = psum / static_cast<double>(n);
    const double rmean = rsum / static_cast<double>(n);
    sum_prop_ratio += pmean / ln_n;
    sum_resp_ratio += rmean / n_over_ln_n;
    sum_proposals_ratio += static_cast<double>(result.proposals) / n_ln_n;
    table.add_row({static_cast<std::int64_t>(seed), result.wall_ms,
                   result.proposals,
                   static_cast<double>(result.proposals) / n_ln_n, pmean,
                   pmean / ln_n, rmean, rmean / n_over_ln_n});
  }
  table.print(std::cout);
  const double inv = 1.0 / static_cast<double>(g_mertens.samples);
  std::cout << "means over " << g_mertens.samples
            << " seed(s): proposer rank = " << sum_prop_ratio * inv
            << "x ln n, responder rank = " << sum_resp_ratio * inv
            << "x n/ln n, proposals = " << sum_proposals_ratio * inv
            << "x n ln n\n";
  return 0;
}

int cmd_verify(int argc, char** /*argv*/) {
  if (argc != 2) return usage();  // everything is flag-driven
  g_verify.pool_threads = g_sweep_threads > 1 ? g_sweep_threads : 0;
  g_verify.report = &std::cout;  // mismatch/repro JSON lines to stdout
  const auto summary = verify::run_verification(g_verify);
  g_telemetry = summary.telemetry;
  std::cerr << "verify: " << summary.seeds_run << " seeds, "
            << summary.checks << " checks, " << summary.mismatch_count
            << " mismatch(es) in " << summary.wall_ms << " ms\n";
  if (summary.clean()) return 0;
  for (const auto& path : summary.repro_paths) {
    std::cerr << "minimal repro written to " << path << '\n';
  }
  return 4;
}

}  // namespace

int main(int argc, char** argv) {
  // Strip global flags anywhere on the line; commands see the remainder.
  std::vector<char*> args;
  args.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--deadline-ms=", 0) == 0) {
      const auto ms = parse_arg<double>(a.c_str() + 14, 0.0, 1e15,
                                        "--deadline-ms value");
      if (!ms) return usage();
      g_budget.wall_ms = *ms;
    } else if (a.rfind("--max-proposals=", 0) == 0) {
      const auto cap = parse_arg<std::int64_t>(
          a.c_str() + 16, 0, std::numeric_limits<std::int64_t>::max(),
          "--max-proposals value");
      if (!cap) return usage();
      g_budget.max_proposals = *cap;
    } else if (a.rfind("--stats-json=", 0) == 0) {
      g_stats_json = a.substr(13);
      if (g_stats_json.empty()) return usage();
    } else if (a.rfind("--stats-prom=", 0) == 0) {
      g_stats_prom = a.substr(13);
      if (g_stats_prom.empty()) return usage();
    } else if (a.rfind("--sweep-threads=", 0) == 0) {
      const auto threads = parse_arg<std::int64_t>(
          a.c_str() + 16, 1, 4096, "--sweep-threads value");
      if (!threads) return usage();
      g_sweep_threads = static_cast<std::size_t>(*threads);
    } else if (a == "--fallback") {
      g_fallback = true;
    } else if (a == "--stdio") {
      g_serve.stdio = true;
    } else if (a.rfind("--port=", 0) == 0) {
      const auto port =
          parse_arg<std::int64_t>(a.c_str() + 7, 0, 65535, "--port value");
      if (!port) return usage();
      g_serve.port = static_cast<std::uint16_t>(*port);
    } else if (a.rfind("--workers=", 0) == 0) {
      const auto workers =
          parse_arg<std::int64_t>(a.c_str() + 10, 1, 1024, "--workers value");
      if (!workers) return usage();
      g_serve.workers = static_cast<std::size_t>(*workers);
    } else if (a.rfind("--queue-depth=", 0) == 0) {
      const auto depth = parse_arg<std::int64_t>(a.c_str() + 14, 1, 1'000'000,
                                                 "--queue-depth value");
      if (!depth) return usage();
      g_serve.queue_depth = static_cast<std::size_t>(*depth);
    } else if (a.rfind("--max-deadline-ms=", 0) == 0) {
      const auto value = parse_arg<double>(a.c_str() + 18, 1.0, 1e15,
                                           "--max-deadline-ms value");
      if (!value) return usage();
      g_serve.max_deadline_ms = *value;
    } else if (a.rfind("--shed-retry-ms=", 0) == 0) {
      const auto value = parse_arg<double>(a.c_str() + 16, 0.0, 1e9,
                                           "--shed-retry-ms value");
      if (!value) return usage();
      g_serve.shed_retry_ms = *value;
    } else if (a.rfind("--drain-deadline-ms=", 0) == 0) {
      const auto value = parse_arg<double>(a.c_str() + 20, 0.0, 1e9,
                                           "--drain-deadline-ms value");
      if (!value) return usage();
      g_serve.drain_deadline_ms = *value;
    } else if (a.rfind("--drain-grace-ms=", 0) == 0) {
      const auto value = parse_arg<double>(a.c_str() + 17, 0.0, 1e9,
                                           "--drain-grace-ms value");
      if (!value) return usage();
      g_serve.drain_grace_ms = *value;
    } else if (a.rfind("--tree-attempts=", 0) == 0) {
      const auto value = parse_arg<std::int32_t>(a.c_str() + 16, 0, 64,
                                                 "--tree-attempts value");
      if (!value) return usage();
      g_serve.tree_attempts = *value;
    } else if (a == "--no-degraded") {
      g_serve.no_degraded = true;
    } else if (a.rfind("--chaos=", 0) == 0) {
      g_serve.chaos = a.substr(8);
      if (g_serve.chaos.empty()) return usage();
    } else if (a.rfind("--chaos-seed=", 0) == 0) {
      const auto value = parse_arg<std::uint64_t>(
          a.c_str() + 13, 0, std::numeric_limits<std::uint64_t>::max(),
          "--chaos-seed value");
      if (!value) return usage();
      g_serve.chaos_seed = *value;
    } else if (a.rfind("--chaos-prob=", 0) == 0) {
      const auto value =
          parse_arg<double>(a.c_str() + 13, 0.0, 1.0, "--chaos-prob value");
      if (!value) return usage();
      g_serve.chaos_prob = *value;
    } else if (a.rfind("--chaos-stall-ms=", 0) == 0) {
      const auto value = parse_arg<double>(a.c_str() + 17, 0.0, 1e9,
                                           "--chaos-stall-ms value");
      if (!value) return usage();
      g_serve.chaos_stall_ms = *value;
    } else if (a.rfind("--requests=", 0) == 0) {
      const auto value = parse_arg<std::int64_t>(a.c_str() + 11, 1, 10'000'000,
                                                 "--requests value");
      if (!value) return usage();
      g_ping.requests = static_cast<std::size_t>(*value);
    } else if (a.rfind("--window=", 0) == 0) {
      const auto value =
          parse_arg<std::int64_t>(a.c_str() + 9, 1, 4096, "--window value");
      if (!value) return usage();
      g_ping.window = static_cast<std::size_t>(*value);
    } else if (a.rfind("--k=", 0) == 0) {
      const auto value = parse_arg<std::int32_t>(a.c_str() + 4, 2, 64,
                                                 "--k value");
      if (!value) return usage();
      g_ping.k = *value;
    } else if (a.rfind("--n=", 0) == 0) {
      // Shared by ping (checked against its own 4096 cap at use) and
      // mertens (implicit backend, so n can be huge in O(n) memory).
      const auto value = parse_arg<std::int32_t>(a.c_str() + 4, 1, 2'000'000,
                                                 "--n value");
      if (!value) return usage();
      g_ping.n = *value;
      g_mertens.n = *value;
    } else if (a.rfind("--samples=", 0) == 0) {
      const auto value = parse_arg<std::int64_t>(a.c_str() + 10, 1, 10'000,
                                                 "--samples value");
      if (!value) return usage();
      g_mertens.samples = *value;
    } else if (a.rfind("--seed=", 0) == 0) {
      const auto value = parse_arg<std::uint64_t>(
          a.c_str() + 7, 0, std::numeric_limits<std::uint64_t>::max(),
          "--seed value");
      if (!value) return usage();
      g_ping.seed = *value;
      g_mertens.seed = *value;
    } else if (a.rfind("--response-timeout-ms=", 0) == 0) {
      const auto value = parse_arg<double>(a.c_str() + 22, 1.0, 1e9,
                                           "--response-timeout-ms value");
      if (!value) return usage();
      g_ping.response_timeout_ms = *value;
    } else if (a.rfind("--emit=", 0) == 0) {
      g_ping.emit = a.substr(7);
      if (g_ping.emit.empty()) return usage();
    } else if (a.rfind("--metrics-out=", 0) == 0) {
      g_ping.metrics_out = a.substr(14);
      if (g_ping.metrics_out.empty()) return usage();
    } else if (a.rfind("--seeds=", 0) == 0) {
      const auto seeds =
          parse_arg<std::int64_t>(a.c_str() + 8, 1, 100'000'000,
                                  "--seeds value");
      if (!seeds) return usage();
      g_verify.seeds = *seeds;
    } else if (a.rfind("--base-seed=", 0) == 0) {
      const auto base = parse_arg<std::uint64_t>(
          a.c_str() + 12, 0, std::numeric_limits<std::uint64_t>::max(),
          "--base-seed value");
      if (!base) return usage();
      g_verify.base_seed = *base;
    } else if (a.rfind("--shape=", 0) == 0) {
      const std::string value = a.substr(8);
      if (value == "all") {
        g_verify.shapes = {verify::Shape::bipartite, verify::Shape::kpartite,
                           verify::Shape::roommates};
      } else if (const auto shape = verify::parse_shape(value)) {
        g_verify.shapes = {*shape};
      } else {
        std::cerr << "unknown --shape '" << value << "'\n";
        return usage();
      }
    } else if (a.rfind("--dist=", 0) == 0) {
      const auto dist = verify::parse_dist(a.substr(7));
      if (!dist) {
        std::cerr << "unknown --dist '" << a.substr(7) << "'\n";
        return usage();
      }
      g_verify.gen.dist = *dist;
    } else if (a.rfind("--sabotage=", 0) == 0) {
      const auto mode = verify::parse_sabotage(a.substr(11));
      if (!mode) {
        std::cerr << "unknown --sabotage '" << a.substr(11) << "'\n";
        return usage();
      }
      g_verify.sabotage = *mode;
    } else if (a.rfind("--repro-dir=", 0) == 0) {
      g_verify.repro_dir = a.substr(12);
      if (g_verify.repro_dir.empty()) return usage();
    } else if (a.rfind("--churn=", 0) == 0) {
      const auto churn =
          parse_arg<std::int32_t>(a.c_str() + 8, 0, 1000, "--churn value");
      if (!churn) return usage();
      g_verify.churn_steps = *churn;
    } else if (a.rfind("--", 0) == 0) {
      std::cerr << "unknown flag '" << a << "'\n";
      return usage();
    } else {
      args.push_back(argv[i]);
    }
  }
  const int nargs = static_cast<int>(args.size());
  if (nargs < 2) return usage();
  const std::string cmd = args[1];
  int rc = -1;
  try {
    if (cmd == "gen") rc = cmd_gen(nargs, args.data());
    else if (cmd == "info") rc = cmd_info(nargs, args.data());
    else if (cmd == "kary") rc = cmd_kary(nargs, args.data());
    else if (cmd == "binary") rc = cmd_binary(nargs, args.data());
    else if (cmd == "roommates") rc = cmd_roommates(nargs, args.data());
    else if (cmd == "coalitions") rc = cmd_coalitions(nargs, args.data());
    else if (cmd == "example") rc = cmd_example(nargs, args.data());
    else if (cmd == "stats") rc = cmd_stats(nargs, args.data());
    else if (cmd == "dot") rc = cmd_dot(nargs, args.data());
    else if (cmd == "verify") rc = cmd_verify(nargs, args.data());
    else if (cmd == "serve") rc = cmd_serve(nargs, args.data());
    else if (cmd == "ping") rc = cmd_ping(nargs, args.data());
    else if (cmd == "mertens") rc = cmd_mertens(nargs, args.data());
  } catch (const kstable::ExecutionAborted& e) {
    std::cerr << "aborted: " << e.what() << '\n';
    write_stats();  // aborted solves still export whatever was recorded
    return 3;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 2;
  }
  if (rc < 0) return usage();
  const int stats_rc = write_stats();
  return rc == 0 ? stats_rc : rc;
}
