// kmatch: a small command-line front-end to the kstable library.
//
// Usage:
//   kmatch gen   <k> <n> <seed> <file>       write a random instance
//   kmatch kary  <file> [tree]               stable k-ary matching (Algorithm 1)
//                                            tree: path | star | random |
//                                            priority | best (TreeSweep argmin
//                                            over all k^(k-2) trees, small k)
//   kmatch binary <file> [lin]               stable binary matching via the
//                                            roommates solver; lin: rr | blocks
//   kmatch roommates <file>                  solve a roommates-format instance
//   kmatch coalitions <file> <c>             super-gender coalitions of group
//                                            size c (k' must be divisible by c)
//   kmatch verify                            cross-engine differential sweep
//                                            (docs/VERIFY.md); mismatches are
//                                            emitted as JSON lines, the first
//                                            failing seed is delta-debugged to
//                                            a minimal loadable repro file
//   kmatch info  <file>                      print instance dimensions
//
// Global flags (accepted anywhere on the command line):
//   --deadline-ms=<ms>     abort the solve after a wall-clock deadline
//   --max-proposals=<n>    abort the solve after n accumulated proposals
//   --fallback             (kary only) on abort, retry along different
//                          spanning trees, then degrade to the priority model
//   --sweep-threads=<n>    pool size for 'kary <file> best' and the
//                          speculative --fallback ladder (checked, >= 1;
//                          1 = sequential, the default)
//   --stats-json=<file>    write the solve's telemetry + the process metrics
//                          registry as one JSON object (docs/OBSERVABILITY.md)
//   --stats-prom=<file>    same data in Prometheus text exposition format
//
// Verify flags (kmatch verify only):
//   --seeds=<n>            seeds per shape (default 100)
//   --shape=<s>            bipartite | kpartite | roommates | all (default all)
//   --dist=<d>             uniform | master | skewed | adversarial | mixed
//   --base-seed=<n>        first seed of the sweep (default 1)
//   --sabotage=<s>         none | gs_swap | kary_swap — deliberately corrupt
//                          one engine's output to self-test the harness
//   --repro-dir=<dir>      where minimal repro files are written (default .)
//
// Every numeric argument is parsed with the checked parse_arg helper: garbage,
// trailing junk, and out-of-range values (k < 2, n < 1, negative seeds) are
// rejected with exit code 2 instead of silently wrapping through std::atoi.
//
// Exit code 0 on success, 1 on "no stable matching", 2 on usage errors,
// 3 when a solve was aborted (deadline/budget exhausted without --fallback,
// or every fallback rung failed), 4 when `kmatch verify` detected a
// cross-engine mismatch (the minimal repro path is printed).

#include <cstdint>
#include <fstream>
#include <iostream>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "core/kstable.hpp"
#include "example_args.hpp"

namespace {

using namespace kstable;
using examples_cli::parse_arg;

/// Flags shared by every solving command; set once in main().
resilience::Budget g_budget;
bool g_fallback = false;
std::size_t g_sweep_threads = 1;
std::string g_stats_json;
std::string g_stats_prom;
/// `kmatch verify` knobs (defaults mirror verify::VerifyOptions).
verify::VerifyOptions g_verify;
/// Telemetry of the command's top-level solve, for --stats-json/--stats-prom.
std::optional<obs::SolveTelemetry> g_telemetry;

/// Returns a control for the configured budget, or nullptr when unlimited.
resilience::ExecControl* budget_control() {
  static resilience::ExecControl control{g_budget};
  return g_budget.unlimited() ? nullptr : &control;
}

int usage() {
  std::cerr << "usage:\n"
               "  kmatch [flags] gen <k> <n> <seed> <file>\n"
               "  kmatch [flags] kary <file> [path|star|random|priority|best]\n"
               "  kmatch [flags] binary <file> [rr|blocks]\n"
               "  kmatch [flags] roommates <file>\n"
               "  kmatch [flags] coalitions <file> <group size>\n"
               "  kmatch example [<name> <file>]   (no args: list catalog)\n"
               "  kmatch stats <file>\n"
               "  kmatch dot <file> tree|matching\n"
               "  kmatch verify [verify flags]\n"
               "  kmatch info <file>\n"
               "flags: --deadline-ms=<ms>  --max-proposals=<n>  --fallback\n"
               "       --sweep-threads=<n>\n"
               "       --stats-json=<file>  --stats-prom=<file>\n"
               "verify flags: --seeds=<n>  --shape=<shape|all>  --dist=<dist>\n"
               "       --base-seed=<n>  --sabotage=<mode>  --repro-dir=<dir>\n";
  return 2;
}

/// Writes the stats files requested via --stats-json/--stats-prom. The JSON
/// payload is one object: {"schema":"kstable.stats.v1","telemetry":...,
/// "metrics":{...}} where telemetry is null for commands that do not solve
/// (gen, info, ...). Returns 0, or 2 when a file cannot be written.
int write_stats() {
  if (!g_stats_json.empty()) {
    std::ofstream out(g_stats_json);
    if (!out) {
      std::cerr << "cannot write stats JSON to '" << g_stats_json << "'\n";
      return 2;
    }
    out << "{\"schema\":\"kstable.stats.v1\",\"telemetry\":";
    if (g_telemetry.has_value()) {
      g_telemetry->write_json(out);
    } else {
      out << "null";
    }
    out << ",\"metrics\":";
    obs::MetricsRegistry::global().write_json(out);
    out << "}\n";
  }
  if (!g_stats_prom.empty()) {
    std::ofstream out(g_stats_prom);
    if (!out) {
      std::cerr << "cannot write stats to '" << g_stats_prom << "'\n";
      return 2;
    }
    if (g_telemetry.has_value()) g_telemetry->write_prometheus(out);
    obs::MetricsRegistry::global().write_prometheus(out);
  }
  return 0;
}

int cmd_gen(int argc, char** argv) {
  if (argc != 6) return usage();
  const auto k = parse_arg<Gender>(argv[2], 2,
                                   std::numeric_limits<Gender>::max(), "k");
  const auto n = parse_arg<Index>(argv[3], 1,
                                  std::numeric_limits<Index>::max(), "n");
  const auto seed = parse_arg<std::uint64_t>(
      argv[4], 0, std::numeric_limits<std::uint64_t>::max(), "seed");
  if (!k || !n || !seed) return usage();
  Rng rng(*seed);
  const auto inst = gen::uniform(*k, *n, rng);
  io::save_file(inst, argv[5]);
  std::cout << "wrote " << *k << "-partite instance (" << *n
            << " members/gender) to " << argv[5] << '\n';
  return 0;
}

int cmd_info(int argc, char** argv) {
  if (argc != 3) return usage();
  const auto inst = io::load_file(argv[2]);
  std::cout << "k = " << inst.genders() << ", n = " << inst.per_gender()
            << ", members = " << inst.total_members() << ", valid = yes\n";
  return 0;
}

int cmd_kary(int argc, char** argv) {
  if (argc < 3 || argc > 4) return usage();
  const auto inst = io::load_file(argv[2]);
  const std::string shape = argc == 4 ? argv[3] : "path";
  const Gender k = inst.genders();

  core::BindingResult result;
  BindingStructure tree(k);
  // Lives outside the branches: the pool must outlive the sweep it backs.
  std::optional<ThreadPool> pool;
  if (g_fallback) {
    resilience::FallbackOptions opts;
    opts.per_attempt = g_budget;
    if (g_sweep_threads > 1) {
      // Race the strict rungs speculatively across the pool.
      pool.emplace(g_sweep_threads);
      opts.pool = &*pool;
      opts.speculative = true;
    }
    auto report = resilience::solve_with_fallback(inst, opts);
    g_telemetry = report.telemetry;
    std::cout << "fallback ladder: " << report.attempts.size()
              << " attempt(s), rung " << resilience::to_string(report.rung)
              << '\n';
    if (!report.succeeded) {
      std::cout << "all rungs failed: " << report.status.summary() << '\n';
      return 3;
    }
    tree = BindingStructure(k);
    for (const auto& e : report.attempts.back().tree_edges) tree.add_edge(e);
    result = std::move(*report.result);
  } else if (shape == "priority") {
    core::PriorityBindingOptions popts;
    popts.binding.control = budget_control();
    auto pr = core::priority_binding(inst, popts);
    result = std::move(pr.binding);
    g_telemetry = result.telemetry;
    tree = pr.tree;
  } else if (shape == "best") {
    core::TreeSweepOptions sopts;
    if (prufer::cayley_count(k) > sopts.max_trees) {
      std::cerr << "kary best sweeps all k^(k-2) trees; k = " << k
                << " spans " << prufer::cayley_count(k)
                << ", above the " << sopts.max_trees << "-tree guard\n";
      return 2;
    }
    resilience::ExecControl* control = budget_control();
    sopts.control = control;
    core::GsEdgeCache cache(k);
    sopts.cache = &cache;
    if (g_sweep_threads > 1) {
      pool.emplace(g_sweep_threads);
      sopts.pool = &*pool;
    }
    auto sweep = core::sweep_all_trees(inst, sopts);
    g_telemetry = sweep.telemetry;
    std::cout << "swept " << sweep.stats.trees << " trees ("
              << sweep.stats.workers << " worker(s), " << sweep.stats.steals
              << " steals); best tree index " << sweep.best_index
              << ", bound-pair cost " << sweep.best_cost << '\n';
    tree = *sweep.best_tree;
    result = std::move(*sweep.best);
  } else {
    if (shape == "path") {
      tree = trees::path(k);
    } else if (shape == "star") {
      tree = trees::star(k, 0);
    } else if (shape == "random") {
      Rng rng(1);
      tree = prufer::random_tree(k, rng);
    } else {
      return usage();
    }
    core::BindingOptions bopts;
    bopts.control = budget_control();
    result = core::iterative_binding(inst, tree, bopts);
    g_telemetry = result.telemetry;
  }

  std::cout << "binding tree edges:";
  for (const auto& e : tree.edges()) std::cout << " (" << e.a << ',' << e.b << ')';
  std::cout << "\nproposals: " << result.total_proposals << '\n';
  const auto& m = result.matching();
  for (Index t = 0; t < m.family_count(); ++t) {
    std::cout << "family " << t << ':';
    for (Gender g = 0; g < k; ++g) std::cout << ' ' << m.member_at(t, g);
    std::cout << '\n';
  }
  const auto costs = analysis::kary_costs(inst, m);
  std::cout << "total cost " << costs.total_cost << ", regret " << costs.regret
            << '\n';
  return 0;
}

int cmd_binary(int argc, char** argv) {
  if (argc < 3 || argc > 4) return usage();
  const auto inst = io::load_file(argv[2]);
  const std::string lin = argc == 4 ? argv[3] : "rr";
  rm::Linearization policy;
  if (lin == "rr") {
    policy = rm::Linearization::round_robin;
  } else if (lin == "blocks") {
    policy = rm::Linearization::gender_blocks;
  } else {
    return usage();
  }
  const auto result =
      rm::solve_kpartite_binary(inst, policy, nullptr, budget_control());
  g_telemetry = result.detail.telemetry;
  if (!result.has_stable) {
    std::cout << "no stable binary matching (reduced list of person "
              << result.detail.failed_person << " emptied)\n";
    return 1;
  }
  const Index n = inst.per_gender();
  std::cout << "stable binary matching (" << result.detail.phase1_proposals
            << " phase-1 proposals, " << result.detail.rotations_eliminated
            << " rotations eliminated):\n";
  for (rm::Person p = 0; p < inst.total_members(); ++p) {
    const rm::Person q = result.partner[static_cast<std::size_t>(p)];
    if (q > p) {
      std::cout << "  " << member_of(p, n) << " -- " << member_of(q, n) << '\n';
    }
  }
  return 0;
}

int cmd_example(int argc, char** argv) {
  if (argc == 2) {  // list the catalog
    for (const auto& entry : examples::catalog()) {
      std::cout << "  " << entry.name << "  —  " << entry.description << '\n';
    }
    return 0;
  }
  if (argc != 4) return usage();
  const auto inst = examples::build(argv[2]);
  io::save_file(inst, argv[3]);
  std::cout << "wrote '" << argv[2] << "' (k=" << inst.genders()
            << ", n=" << inst.per_gender() << ") to " << argv[3] << '\n';
  return 0;
}

int cmd_stats(int argc, char** argv) {
  if (argc != 3) return usage();
  const auto inst = io::load_file(argv[2]);
  const Gender k = inst.genders();
  std::cout << "k = " << k << ", n = " << inst.per_gender() << '\n';
  // Solve with a path tree and print the quality profile per tree shape.
  TableWriter table("binding quality by tree shape",
                    {"tree", "proposals", "bound-pair cost", "all-pairs cost",
                     "regret"});
  auto add = [&](const std::string& name, const BindingStructure& tree) {
    const auto result = core::iterative_binding(inst, tree);
    const auto bound = analysis::kary_tree_costs(inst, result.matching(), tree);
    const auto all = analysis::kary_costs(inst, result.matching());
    table.add_row({name, result.total_proposals, bound.total_cost,
                   all.total_cost, std::int64_t{all.regret}});
  };
  add("path", trees::path(k));
  add("star(0)", trees::star(k, 0));
  add("cost-aware", core::select_tree(inst, core::TreeObjective::min_cost));
  table.print(std::cout);
  return 0;
}

int cmd_dot(int argc, char** argv) {
  if (argc != 4) return usage();
  const auto inst = io::load_file(argv[2]);
  const std::string what = argv[3];
  if (what == "tree") {
    std::cout << analysis::to_dot(trees::path(inst.genders()));
    return 0;
  }
  if (what == "matching") {
    const auto result =
        core::iterative_binding(inst, trees::path(inst.genders()));
    std::cout << analysis::to_dot(result.matching());
    return 0;
  }
  return usage();
}

int cmd_roommates(int argc, char** argv) {
  if (argc != 3) return usage();
  const auto inst = rm::io::load_file(argv[2]);
  rm::SolveOptions solve_options;
  solve_options.control = budget_control();
  const auto result = rm::solve(inst, solve_options);
  g_telemetry = result.telemetry;
  if (!result.has_stable) {
    std::cout << "no stable matching (reduced list of person "
              << result.failed_person << " emptied)\n";
    return 1;
  }
  std::cout << "stable matching (" << result.phase1_proposals
            << " phase-1 proposals, " << result.rotations_eliminated
            << " rotations eliminated):\n";
  for (rm::Person p = 0; p < inst.size(); ++p) {
    if (result.match[static_cast<std::size_t>(p)] > p) {
      std::cout << "  " << p << " -- "
                << result.match[static_cast<std::size_t>(p)] << '\n';
    }
  }
  return 0;
}

int cmd_coalitions(int argc, char** argv) {
  if (argc != 4) return usage();
  const auto c = parse_arg<Gender>(argv[3], 1,
                                   std::numeric_limits<Gender>::max(),
                                   "group size");
  if (!c) return usage();
  const auto inst = io::load_file(argv[2]);
  if (inst.genders() % *c != 0) {
    std::cerr << "invalid group size " << *c << ": must divide k = "
              << inst.genders() << '\n';
    return usage();
  }
  const auto partition =
      core::SupergenderPartition::contiguous(inst.genders(), *c);
  const auto result = core::coalition_binding(
      inst, partition, rm::Linearization::round_robin);
  g_telemetry = result.binding.telemetry;
  std::cout << result.coalitions.size() << " coalitions of "
            << result.coalitions.front().members.size()
            << " members (one per super-gender):\n";
  for (std::size_t t = 0; t < result.coalitions.size(); ++t) {
    std::cout << "  coalition " << t << ':';
    for (const MemberId m : result.coalitions[t].members) {
      std::cout << ' ' << m;
    }
    std::cout << '\n';
  }
  return 0;
}

int cmd_verify(int argc, char** /*argv*/) {
  if (argc != 2) return usage();  // everything is flag-driven
  g_verify.pool_threads = g_sweep_threads > 1 ? g_sweep_threads : 0;
  g_verify.report = &std::cout;  // mismatch/repro JSON lines to stdout
  const auto summary = verify::run_verification(g_verify);
  g_telemetry = summary.telemetry;
  std::cerr << "verify: " << summary.seeds_run << " seeds, "
            << summary.checks << " checks, " << summary.mismatch_count
            << " mismatch(es) in " << summary.wall_ms << " ms\n";
  if (summary.clean()) return 0;
  for (const auto& path : summary.repro_paths) {
    std::cerr << "minimal repro written to " << path << '\n';
  }
  return 4;
}

}  // namespace

int main(int argc, char** argv) {
  // Strip global flags anywhere on the line; commands see the remainder.
  std::vector<char*> args;
  args.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--deadline-ms=", 0) == 0) {
      const auto ms = parse_arg<double>(a.c_str() + 14, 0.0, 1e15,
                                        "--deadline-ms value");
      if (!ms) return usage();
      g_budget.wall_ms = *ms;
    } else if (a.rfind("--max-proposals=", 0) == 0) {
      const auto cap = parse_arg<std::int64_t>(
          a.c_str() + 16, 0, std::numeric_limits<std::int64_t>::max(),
          "--max-proposals value");
      if (!cap) return usage();
      g_budget.max_proposals = *cap;
    } else if (a.rfind("--stats-json=", 0) == 0) {
      g_stats_json = a.substr(13);
      if (g_stats_json.empty()) return usage();
    } else if (a.rfind("--stats-prom=", 0) == 0) {
      g_stats_prom = a.substr(13);
      if (g_stats_prom.empty()) return usage();
    } else if (a.rfind("--sweep-threads=", 0) == 0) {
      const auto threads = parse_arg<std::int64_t>(
          a.c_str() + 16, 1, 4096, "--sweep-threads value");
      if (!threads) return usage();
      g_sweep_threads = static_cast<std::size_t>(*threads);
    } else if (a == "--fallback") {
      g_fallback = true;
    } else if (a.rfind("--seeds=", 0) == 0) {
      const auto seeds =
          parse_arg<std::int64_t>(a.c_str() + 8, 1, 100'000'000,
                                  "--seeds value");
      if (!seeds) return usage();
      g_verify.seeds = *seeds;
    } else if (a.rfind("--base-seed=", 0) == 0) {
      const auto base = parse_arg<std::uint64_t>(
          a.c_str() + 12, 0, std::numeric_limits<std::uint64_t>::max(),
          "--base-seed value");
      if (!base) return usage();
      g_verify.base_seed = *base;
    } else if (a.rfind("--shape=", 0) == 0) {
      const std::string value = a.substr(8);
      if (value == "all") {
        g_verify.shapes = {verify::Shape::bipartite, verify::Shape::kpartite,
                           verify::Shape::roommates};
      } else if (const auto shape = verify::parse_shape(value)) {
        g_verify.shapes = {*shape};
      } else {
        std::cerr << "unknown --shape '" << value << "'\n";
        return usage();
      }
    } else if (a.rfind("--dist=", 0) == 0) {
      const auto dist = verify::parse_dist(a.substr(7));
      if (!dist) {
        std::cerr << "unknown --dist '" << a.substr(7) << "'\n";
        return usage();
      }
      g_verify.gen.dist = *dist;
    } else if (a.rfind("--sabotage=", 0) == 0) {
      const auto mode = verify::parse_sabotage(a.substr(11));
      if (!mode) {
        std::cerr << "unknown --sabotage '" << a.substr(11) << "'\n";
        return usage();
      }
      g_verify.sabotage = *mode;
    } else if (a.rfind("--repro-dir=", 0) == 0) {
      g_verify.repro_dir = a.substr(12);
      if (g_verify.repro_dir.empty()) return usage();
    } else if (a.rfind("--", 0) == 0) {
      std::cerr << "unknown flag '" << a << "'\n";
      return usage();
    } else {
      args.push_back(argv[i]);
    }
  }
  const int nargs = static_cast<int>(args.size());
  if (nargs < 2) return usage();
  const std::string cmd = args[1];
  int rc = -1;
  try {
    if (cmd == "gen") rc = cmd_gen(nargs, args.data());
    else if (cmd == "info") rc = cmd_info(nargs, args.data());
    else if (cmd == "kary") rc = cmd_kary(nargs, args.data());
    else if (cmd == "binary") rc = cmd_binary(nargs, args.data());
    else if (cmd == "roommates") rc = cmd_roommates(nargs, args.data());
    else if (cmd == "coalitions") rc = cmd_coalitions(nargs, args.data());
    else if (cmd == "example") rc = cmd_example(nargs, args.data());
    else if (cmd == "stats") rc = cmd_stats(nargs, args.data());
    else if (cmd == "dot") rc = cmd_dot(nargs, args.data());
    else if (cmd == "verify") rc = cmd_verify(nargs, args.data());
  } catch (const kstable::ExecutionAborted& e) {
    std::cerr << "aborted: " << e.what() << '\n';
    write_stats();  // aborted solves still export whatever was recorded
    return 3;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 2;
  }
  if (rc < 0) return usage();
  const int stats_rc = write_stats();
  return rc == 0 ? stats_rc : rc;
}
